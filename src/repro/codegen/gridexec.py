"""Whole-grid vectorized execution support for compiled kernels.

:class:`VecRun` is the runtime object the vectorized emitter
(:mod:`repro.codegen.vectorize`) generates calls against.  One instance
covers one kernel *launch*: every thread of the grid advances in
lockstep as a lane of int64/float64 numpy arrays, heap accesses become
gathers/scatters, and each traced access is recorded as a *plan* (the
word indices it touched, per lane).  When the kernel body finishes,
:meth:`finish` first proves the launch free of cross-thread data
dependence (:meth:`_check`) and only then applies the batched shadow and
heat updates — all-or-nothing, so a late bail can fall back to the
scalar backend with no half-applied instrumentation.

Values, unlike instrumentation, are applied immediately (scatters write
through to the allocation payloads); :meth:`restore` reverts them from
pre-write snapshots when the run bails.
"""

from __future__ import annotations

import numpy as np

from ..interp.values import _typed_view
from .emitter import DTYPES

__all__ = ["VecBail", "VecRun"]


class VecBail(Exception):
    """Raised when a launch cannot be proven safe to vectorize."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: Access kinds, matching ``repro.codegen.emitter.TRACE_KIND``.
_READ, _WRITE, _RMW = 0, 1, 2


class _Res:
    """One resolved (per-launch) heap access: lanes -> elements/words."""

    __slots__ = ("kind", "dt", "size", "alloc", "elem", "words", "lanes",
                 "lane0", "count", "site_i", "traced", "wmin", "wmax",
                 "_uniq")

    def __init__(self, kind, dt, size, alloc, elem, words, lanes, lane0,
                 count, site_i, traced):
        self.kind = kind
        self.dt = dt
        self.size = size
        self.alloc = alloc
        self.elem = elem        # element index per active lane
        self.words = words      # shadow word index per touched word
        self.lanes = lanes      # lane id per entry of ``words``
        self.lane0 = lane0      # lane id per entry of ``elem``
        self.count = count      # number of active lanes
        self.site_i = site_i
        self.traced = traced
        self.wmin = int(words.min())
        self.wmax = int(words.max())
        self._uniq = None

    @property
    def uniq(self) -> np.ndarray:
        if self._uniq is None:
            self._uniq = np.unique(self.words)
        return self._uniq


class VecRun:
    """Per-launch state for one vectorized kernel execution."""

    def __init__(self, interp, grid: int, block: int, sites) -> None:
        self.interp = interp
        self.tracer = interp.tracer
        self.space = interp._space
        self.n = grid * block
        self.bx = np.repeat(np.arange(grid, dtype=np.int64), block)
        self.tx = np.tile(np.arange(block, dtype=np.int64), grid)
        self.sites = sites
        self.plans: list[_Res] = []
        self._snapshots: dict[int, tuple] = {}
        self._finished = False

    # -- lane helpers ---------------------------------------------------

    def ones(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def truthy(self, x):
        x = np.asarray(x)
        if x.dtype == bool:
            return x
        return x != 0

    def asint(self, x):
        """C integer conversion: bool -> 0/1, float -> trunc toward zero."""
        x = np.asarray(x)
        if x.dtype == bool:
            return x.astype(np.int64)
        if x.dtype.kind == "f":
            return np.trunc(x).astype(np.int64)
        return x.astype(np.int64, copy=False)

    def lnot(self, x):
        return ~self.truthy(x)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def sel(self, mask, new, old):
        """Masked local update: keep ``old`` on inactive lanes."""
        if mask is None:
            return new
        return np.where(mask, new, old)

    def _div_operands(self, a, b, m):
        a_ = np.asarray(a)
        b_ = np.asarray(b)
        bz = np.asarray(b_ == 0)
        if bz.ndim == 0:
            active_zero = bool(bz) and (m is None or bool(np.any(m)))
        elif m is None:
            active_zero = bool(np.any(bz))
        else:
            active_zero = bool(np.any(bz & m))
        if active_zero:
            # The interpreter raises per-thread; reproduce it there.
            raise VecBail("division by zero on an active lane")
        safe = np.where(bz, 1, b_) if bz.ndim or bool(bz) else b_
        isf = a_.dtype.kind == "f" or b_.dtype.kind == "f"
        return a_, safe, isf

    def div(self, a, b, m):
        """C division semantics (truncation toward zero for integers)."""
        a_, safe, isf = self._div_operands(a, b, m)
        if isf:
            return np.asarray(a_, dtype=np.float64) / np.asarray(
                safe, dtype=np.float64)
        ai = self.asint(a_)
        bi = self.asint(safe)
        q = np.abs(ai) // np.abs(bi)
        return np.where((ai >= 0) == (bi >= 0), q, -q)

    def mod(self, a, b, m):
        """C remainder: ``a - cdiv(a, b) * b``."""
        a_, safe, isf = self._div_operands(a, b, m)
        if isf:
            af = np.asarray(a_, dtype=np.float64)
            bf = np.asarray(safe, dtype=np.float64)
            return af - np.trunc(af / bf) * bf
        ai = self.asint(a_)
        bi = self.asint(safe)
        q = np.abs(ai) // np.abs(bi)
        q = np.where((ai >= 0) == (bi >= 0), q, -q)
        return ai - q * bi

    # -- value wraps (vector analogues of the ``_w_*`` scalar wraps) ----

    def _wi(self, x, bits, signed):
        v = self.asint(x)
        if bits >= 64:
            return v
        v = v & ((1 << bits) - 1)
        if signed:
            v = np.where(v >= (1 << (bits - 1)), v - (1 << bits), v)
        return v

    def w_i4(self, x):
        return self._wi(x, 32, True)

    def w_u4(self, x):
        return self._wi(x, 32, False)

    def w_u8(self, x):
        # Pointers ride in int64 lanes; valid programs never go negative.
        return self.asint(x)

    def w_f4(self, x):
        return np.asarray(x, dtype=np.float64).astype(
            np.float32).astype(np.float64)

    def w_f8(self, x):
        return np.asarray(x, dtype=np.float64)

    # -- heap access ----------------------------------------------------

    def _lanes_of(self, m, count):
        if m is None:
            return np.arange(self.n, dtype=np.int64)
        return np.nonzero(m)[0]

    def _resolve(self, key, addr, m, kind, site_i, traced):
        dt = DTYPES[key]
        size = dt.itemsize
        count = self.n if m is None else int(np.count_nonzero(m))
        if count == 0:
            return None
        lane0 = self._lanes_of(m, count)
        a = np.asarray(addr)
        if a.ndim == 0:
            act = np.full(count, int(a), dtype=np.int64)
        else:
            if a.dtype.kind not in "iu":
                raise VecBail("non-integer address expression")
            act = a[lane0].astype(np.int64, copy=False)
        amin = int(act.min())
        amax = int(act.max())
        alloc = self.space.find(amin)
        if alloc is None or alloc.data is None:
            raise VecBail("address outside materialized allocations")
        if amax + size > alloc.base + alloc.size:
            raise VecBail("access range spans allocations")
        offs = act - alloc.base
        if size > 1 and (offs % size).any():
            raise VecBail("unaligned access")
        elem = offs // size
        if size <= 4:
            words = offs >> 2
            lanes = lane0
        else:
            wpl = size // 4
            words = ((offs >> 2)[:, None]
                     + np.arange(wpl, dtype=np.int64)).reshape(-1)
            lanes = np.repeat(lane0, wpl)
        return _Res(kind, dt, size, alloc, elem, words, lanes, lane0,
                    count, site_i, traced)

    def _zeros(self, key):
        if DTYPES[key].kind == "f":
            return np.zeros(self.n, dtype=np.float64)
        return np.zeros(self.n, dtype=np.int64)

    def _gather(self, res):
        view = _typed_view(res.alloc, res.dt)
        act = view[res.elem]
        if res.dt.kind == "f":
            act = act.astype(np.float64)
            out = np.zeros(self.n, dtype=np.float64)
        else:
            act = act.astype(np.int64)
            out = np.zeros(self.n, dtype=np.int64)
        if res.count == self.n:
            return act if act.shape == out.shape else out
        out[res.lane0] = act
        return out

    def _scatter(self, res, vals):
        key = id(res.alloc)
        if key not in self._snapshots:
            self._snapshots[key] = (res.alloc, res.alloc.data.copy())
        v = np.asarray(vals)
        if v.ndim == 0:
            act = np.full(res.count, v.item())
        else:
            act = v[res.lane0]
        dt = res.dt
        if dt.kind == "f":
            out = np.asarray(act, dtype=np.float64)
        else:
            iv = self.asint(act)
            bits = dt.itemsize * 8
            if bits < 64:
                iv = iv & ((1 << bits) - 1)
                if dt.kind == "i":
                    iv = np.where(iv >= (1 << (bits - 1)),
                                  iv - (1 << bits), iv)
            out = iv
        view = _typed_view(res.alloc, dt)
        elem = res.elem
        if elem.size != np.unique(elem).size:
            # Duplicate targets: make last-wins explicit (numpy leaves the
            # order of duplicate fancy assignments unspecified).
            _, first = np.unique(elem[::-1], return_index=True)
            pos = elem.size - 1 - first
            view[elem[pos]] = out[pos]
        else:
            view[elem] = out

    def rd(self, key, site_i, addr, m):
        res = self._resolve(key, addr, m, _READ, site_i, True)
        if res is None:
            return self._zeros(key)
        self.plans.append(res)
        return self._gather(res)

    def wr(self, key, site_i, addr, m, vals):
        res = self._resolve(key, addr, m, _WRITE, site_i, True)
        if res is None:
            return
        self.plans.append(res)
        self._scatter(res, vals)

    def rmw(self, key, site_i, addr, m):
        res = self._resolve(key, addr, m, _RMW, site_i, True)
        if res is None:
            return None, self._zeros(key)
        self.plans.append(res)
        return res, self._gather(res)

    def commit(self, res, m, vals):
        if res is None:
            return
        self._scatter(res, vals)

    def ld(self, key, addr, m):
        res = self._resolve(key, addr, m, _READ, None, False)
        if res is None:
            return self._zeros(key)
        self.plans.append(res)
        return self._gather(res)

    def st(self, key, addr, m, vals):
        res = self._resolve(key, addr, m, _WRITE, None, False)
        if res is None:
            return
        self.plans.append(res)
        self._scatter(res, vals)

    # -- safety + application -------------------------------------------

    def _check(self) -> None:
        """Prove the launch free of cross-thread data dependence.

        Grouped per allocation; all-read groups are trivially safe.  For
        any overlapping pair involving a write, the plans must touch
        identical words from identical lanes AND each word must belong to
        a single lane — then per-word event order equals any per-thread
        serialization, which is what the scalar oracle produces.
        """
        groups: dict[int, list[_Res]] = {}
        for p in self.plans:
            groups.setdefault(id(p.alloc), []).append(p)
        for group in groups.values():
            if all(p.kind == _READ for p in group):
                continue
            for i, p in enumerate(group):
                if p.kind == _RMW and p.uniq.size != p.words.size:
                    raise VecBail("read-modify-write with colliding words")
                for q in group[i + 1:]:
                    if p.kind == _READ and q.kind == _READ:
                        continue
                    if p.wmax < q.wmin or q.wmax < p.wmin:
                        continue
                    if np.intersect1d(p.uniq, q.uniq).size == 0:
                        continue
                    identical = (p.words.size == q.words.size
                                 and np.array_equal(p.words, q.words)
                                 and np.array_equal(p.lanes, q.lanes))
                    if not identical:
                        raise VecBail("cross-thread data dependence")
                    if p.uniq.size != p.words.size:
                        raise VecBail("colliding words across lanes")

    def _batcher_seen(self) -> int | None:
        """Words the interpreter's TraceBatcher would tally for this
        launch, or ``None`` when parity cannot be proven.

        The interpreter counts *post-merge interval widths*: per thread,
        consecutive trace calls on the same ``(allocation, kind)`` merge
        into one pending interval when they overlap or touch, and only
        flushed interval widths reach ``words_seen``.  This simulates
        that accounting exactly, vectorized across lanes (each lane's
        pending interval advances through the plans in statement order;
        inactive lanes skip a plan just like a masked-off thread skips
        the statement).

        The one case the per-lane simulation cannot see is a chain
        *continuing across the lane boundary* -- thread ``l``'s final
        pending interval merging with thread ``l+1``'s first trace call.
        Such merges change nothing when the key's traced words are
        duplicate-free (merged unions stay collapse-free, so widths sum
        to the same total), so that case is allowed; a boundary touch on
        a key *with* colliding words returns ``None`` and the launch
        falls back to the scalar backend.
        """
        smt = self.tracer.smt
        traced = [p for p in self.plans
                  if p.traced and smt.lookup(p.alloc.base) is not None]
        if not traced:
            return 0
        n = self.n
        pkey = np.full(n, -1, dtype=np.int64)   # pending chain key per lane
        plo = np.zeros(n, dtype=np.int64)
        phi = np.zeros(n, dtype=np.int64)
        fkey = np.full(n, -1, dtype=np.int64)   # first trace call per lane
        flo = np.zeros(n, dtype=np.int64)
        fhi = np.zeros(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        keys: dict[tuple[int, int], int] = {}
        kinds: list[int] = []
        key_words: dict[int, list[np.ndarray]] = {}
        for p in traced:
            kk = (id(p.alloc), p.kind)
            k = keys.get(kk)
            if k is None:
                k = keys[kk] = len(kinds)
                kinds.append(p.kind)
                key_words[k] = []
            key_words[k].append(p.words)
            width = p.size // 4 if p.size > 4 else 1
            starts = p.words if width == 1 else p.words[::width]
            L = p.lane0
            lo = plo[L]
            hi = phi[L]
            same = pkey[L] == k
            if p.kind == _RMW:
                merge = same & ((starts == hi) | (starts + width == lo))
            else:
                merge = same & (starts <= hi) & (starts + width >= lo)
            flush = (pkey[L] != -1) & ~merge
            fl = L[flush]
            counts[fl] += phi[fl] - plo[fl]
            plo[L] = np.where(merge, np.minimum(lo, starts), starts)
            phi[L] = np.where(merge, np.maximum(hi, starts + width),
                              starts + width)
            pkey[L] = k
            new = fkey[L] == -1
            nl = L[new]
            fkey[nl] = k
            flo[nl] = starts[new]
            fhi[nl] = starts[new] + width
        have = pkey != -1
        counts[have] += phi[have] - plo[have]
        boundary = (pkey[:-1] != -1) & (pkey[:-1] == fkey[1:])
        if boundary.any():
            kind_arr = np.asarray(kinds, dtype=np.int64)
            is_rmw = kind_arr[np.clip(pkey[:-1], 0, None)] == _RMW
            touch_rw = (flo[1:] <= phi[:-1]) & (fhi[1:] >= plo[:-1])
            touch_rmw = (flo[1:] == phi[:-1]) | (fhi[1:] == plo[:-1])
            touch = boundary & np.where(is_rmw, touch_rmw, touch_rw)
            for k in np.unique(pkey[:-1][touch]):
                words = np.concatenate(key_words[int(k)])
                if np.unique(words).size != words.size:
                    return None
        return int(counts.sum())

    def finish(self) -> None:
        """Validate the launch, then apply batched shadow/heat updates."""
        if self._finished:
            return
        self._finished = True
        self._check()
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        seen = self._batcher_seen()
        if seen is None:
            raise VecBail("cross-lane trace coalescing with colliding words")
        tracer.flush_trace()
        proc = tracer.current_proc
        heat = tracer.heat
        smt = tracer.smt
        sites = self.sites
        for p in self.plans:
            if not p.traced:
                continue
            block = smt.lookup(p.alloc.base)
            if block is None:
                continue
            tracer._apply_words(block, proc, p.kind, p.words, count=0)
            if heat is not None:
                site = (sites[p.site_i]
                        if p.site_i is not None and sites else None)
                if p.kind != _WRITE:
                    heat.record(p.alloc, proc, is_write=False,
                                idx=p.words, site=site, n=p.count)
                if p.kind != _READ:
                    heat.record(p.alloc, proc, is_write=True,
                                idx=p.words, site=site, n=p.count)
        tracer.note_words(seen)

    def restore(self) -> None:
        """Revert every scattered allocation to its pre-launch payload."""
        for alloc, payload in self._snapshots.values():
            if alloc.data is not None:
                alloc.data[:] = payload

"""XPlacer reproduction: automatic analysis of data access patterns on
heterogeneous CPU/GPU systems (Pirkelbauer et al., IPDPS 2020).

Subpackages:

* :mod:`repro.memsim` -- simulated heterogeneous node (unified memory,
  interconnects, platform presets for the paper's three testbeds);
* :mod:`repro.cudart` -- simulated CUDA runtime API + CUPTI-style profiler;
* :mod:`repro.runtime` -- the XPlacer runtime library (shadow memory,
  tracing API, diagnostics, exports);
* :mod:`repro.analysis` -- anti-pattern detectors and the placement advisor;
* :mod:`repro.instrument` -- mini-CUDA source instrumenter (ROSE stand-in);
* :mod:`repro.interp` -- executor for instrumented mini-CUDA programs;
* :mod:`repro.workloads` -- LULESH, Smith-Waterman and Rodinia ports;
* :mod:`repro.evalx` -- per-figure/table evaluation harness
  (``python -m repro.evalx``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

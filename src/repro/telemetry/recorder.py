"""The telemetry recorder: one observer, three sinks.

:class:`TelemetryRecorder` subscribes to a :class:`~repro.cudart.CudaRuntime`
exactly like the XPlacer tracer does, taps the platform's
:class:`~repro.memsim.EventLog` through its listener hook, and registers as
the unified-memory driver's metrics hook.  Every observation fans out to
up to three sinks:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` (counters/gauges/
  histograms, Prometheus exposition),
* a :class:`~repro.telemetry.timeline.TimelineBuilder` (Perfetto trace),
* a :class:`~repro.telemetry.events_jsonl.JsonlWriter` (structured stream).

A recorder may be attached to several sessions over its lifetime (the
evaluation harness runs one session per experiment case); each session
becomes its own process track in the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..cudart.observer import ObserverBase
from ..memsim import Event, EventKind, Platform

from .events_jsonl import (
    SCHEMA_VERSION,
    JsonlWriter,
    encode_driver_event,
    run_manifest,
)
from .metrics import MetricsRegistry
from .timeline import (
    TRACK_DRIVER,
    TRACK_GPU,
    TRACK_HOST,
    TRACK_LINK,
    TimelineBuilder,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.advisor import Diagnosis
    from ..cudart.api import CudaRuntime
    from ..heatmap.store import HeatStore
    from ..runtime.tracer import Tracer

__all__ = ["TelemetryRecorder"]

#: Driver event kinds rendered as spans on the interconnect track.
_LINK_SPAN_KINDS = frozenset({
    EventKind.MIGRATION, EventKind.EVICTION, EventKind.TRANSFER,
    EventKind.DUPLICATION,
})
#: Driver event kinds rendered as instants on the driver track.
_DRIVER_INSTANT_KINDS = frozenset({
    EventKind.PAGE_FAULT, EventKind.INVALIDATION, EventKind.PHASE,
})


@dataclass
class _SessionHooks:
    """Everything the recorder wired into one session (for detach)."""

    runtime: "CudaRuntime"
    platform: Platform
    pid: int
    listener: Any
    tracer: "Tracer | None" = None
    drop_listener: Any = None
    epoch_hook: Any = None
    pending_kernels: list[tuple[str, int, int, float]] = field(default_factory=list)
    #: Heat store the tracer carried before attach (restored on detach).
    prev_heat: Any = None
    heat_installed: bool = False
    #: Timeline anchor (time, track) of every drawn causal event, so later
    #: events can point flow arrows back at their parents.
    event_points: dict[int, tuple[float, int]] = field(default_factory=dict)
    #: Driver ``track_causes`` value before attach (restored on detach).
    prev_track_causes: bool = False
    causes_installed: bool = False
    #: Whether the tracer's backend attribution was already written to the
    #: JSONL stream (finalisation runs at both detach and flush).
    backend_recorded: bool = False


class TelemetryRecorder(ObserverBase):
    """Unified metrics + timeline + JSONL recording for simulated runs.

    :param metrics: registry to emit into (default: fresh, ``xplacer_``
        prefixed).
    :param timeline: trace builder (default: fresh).
    :param jsonl: structured stream, or ``None`` to skip JSONL output.
    :param stream_driver_events: write every driver event to the JSONL
        stream (the metrics/timeline sinks always see them).
    :param max_timeline_events: soft cap on timeline events; beyond it new
        spans/instants are dropped (counted in ``dropped_timeline_events``)
        so huge runs still produce loadable traces.
    :param heat: optional :class:`~repro.heatmap.store.HeatStore`;
        :meth:`attach` installs it on the session's tracer (heat recording
        stays off without one) and :meth:`flush` writes ``heat.csv`` /
        ``heat.npz`` next to the other artifacts.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        timeline: TimelineBuilder | None = None,
        jsonl: JsonlWriter | None = None,
        stream_driver_events: bool = True,
        max_timeline_events: int = 200_000,
        heat: "HeatStore | None" = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry("xplacer_")
        self.timeline = timeline if timeline is not None else TimelineBuilder()
        self.jsonl = jsonl
        self.heat = heat
        self.stream_driver_events = stream_driver_events
        self.max_timeline_events = max_timeline_events
        self.dropped_timeline_events = 0
        self._flow_seq = 0
        #: Manifest fields used when the recorder itself has to open the
        #: stream (set by CLIs before the first attach).
        self.workload = ""
        self.config: dict[str, Any] = {}
        #: Sampling regime of the last sampled tracer attached (stride,
        #: effective rate, estimated fidelity) -- ``None`` for dense runs.
        self.sampling: dict[str, Any] | None = None
        #: Backend attribution of the last compiled-backend tracer
        #: finalised (backend, launch counts, fallbacks) -- ``None`` for
        #: plain interpreter runs.
        self.backend: dict[str, Any] | None = None
        self._sessions: list[_SessionHooks] = []
        self._active: _SessionHooks | None = None
        self._declare_core_metrics()

    def _declare_core_metrics(self) -> None:
        """Pre-register the headline series at zero.

        A run that never faults (e.g. a pure cudaMalloc workload) still
        exposes the fault/migration/eviction/transfer families, so
        dashboards and the acceptance checks can rely on their presence.
        """
        m = self.metrics
        m.counter("page_fault_groups_total", "fault groups serviced").inc(0)
        m.counter("page_fault_pages_total", "faulting pages").inc(0)
        m.counter("migrated_pages_total",
                  "pages migrated on demand or by prefetch").inc(0)
        m.counter("evicted_pages_total",
                  "pages evicted to host for capacity").inc(0)
        m.counter("transfer_bytes_total", "explicit cudaMemcpy bytes").inc(0)
        m.counter("duplicated_pages_total", "read-mostly copies created").inc(0)
        m.counter("invalidated_pages_total",
                  "duplicated copies dropped on write").inc(0)
        m.counter("remote_access_bytes_total",
                  "bytes served over the link without migration").inc(0)
        m.counter("kernel_launches_total", "kernel launches").inc(0)
        # Contract name shared with the stream tooling: registered verbatim
        # (no ``xplacer_`` prefix) so dashboards see one series either way.
        m.counter("repro_events_dropped_total",
                  "driver events lost from retention (not spilled)",
                  absolute=True).inc(0)

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, runtime: "CudaRuntime", tracer: "Tracer | None" = None,
               *, label: str = "", track_causes: bool = False) -> "TelemetryRecorder":
        """Wire this recorder into ``runtime`` (and optionally ``tracer``).

        Subscribes as a runtime observer, adds an event-log listener, and
        installs the UM driver metrics hook.  With ``track_causes`` the UM
        driver is switched into causal-provenance mode for the duration of
        the attachment: events carry cause links, the JSONL stream gains
        ``cause`` blocks, and the timeline gains flow arrows from
        triggering kernels / upstream events to the work they caused.
        Returns self.
        """
        platform = runtime.platform
        pid = len(self._sessions) + 1
        hooks = _SessionHooks(runtime=runtime, platform=platform, pid=pid,
                              listener=None, tracer=tracer)
        if track_causes:
            hooks.prev_track_causes = platform.um.track_causes
            hooks.causes_installed = True
            platform.um.track_causes = True

        def listener(event: Event, _hooks=hooks) -> None:
            self._on_driver_event(_hooks, event)

        hooks.listener = listener

        def drop_listener(event: Event) -> None:
            self.metrics.counter(
                "repro_events_dropped_total",
                "driver events lost from retention (not spilled)",
                absolute=True).inc(1, kind=event.kind.value)

        hooks.drop_listener = drop_listener
        if self.jsonl is not None and self.jsonl.records == 0:
            self.jsonl.write(run_manifest(platform, workload=self.workload,
                                          config=self.config))
        self.timeline.declare_process(
            pid, label or f"{platform.name} session {pid}")
        runtime.subscribe(self)
        platform.events.add_listener(listener)
        platform.events.add_drop_listener(drop_listener)
        platform.um.metrics_hook = self._metrics_hook
        if tracer is not None:
            self._record_sampling(tracer)
            def epoch_hook(epoch: int, _hooks=hooks) -> None:
                self._on_epoch(_hooks, epoch)
            hooks.epoch_hook = epoch_hook
            tracer.epoch_hooks.append(epoch_hook)
            if self.heat is not None:
                hooks.prev_heat = tracer.heat
                hooks.heat_installed = True
                tracer.heat = self.heat
        self._sessions.append(hooks)
        self._active = hooks
        return self

    def detach(self, runtime: "CudaRuntime | None" = None) -> None:
        """Unwire from ``runtime`` (default: every attached session)."""
        remaining: list[_SessionHooks] = []
        for hooks in self._sessions:
            if runtime is not None and hooks.runtime is not runtime:
                remaining.append(hooks)
                continue
            self._finalize_session(hooks)
            hooks.runtime.unsubscribe(self)
            hooks.platform.events.remove_listener(hooks.listener)
            if hooks.drop_listener is not None:
                hooks.platform.events.remove_drop_listener(hooks.drop_listener)
            # Bound-method access creates a fresh object each time, so
            # compare by equality, not identity.
            if hooks.platform.um.metrics_hook == self._metrics_hook:
                hooks.platform.um.metrics_hook = None
            if hooks.tracer is not None and hooks.epoch_hook is not None:
                if hooks.epoch_hook in hooks.tracer.epoch_hooks:
                    hooks.tracer.epoch_hooks.remove(hooks.epoch_hook)
            if hooks.heat_installed and hooks.tracer is not None:
                if hooks.tracer.heat is self.heat:
                    hooks.tracer.heat = hooks.prev_heat
                hooks.heat_installed = False
            if hooks.causes_installed:
                hooks.platform.um.track_causes = hooks.prev_track_causes
                hooks.causes_installed = False
            if self._active is hooks:
                self._active = None
        self._sessions = remaining
        if self._active is None and remaining:
            self._active = remaining[-1]

    @property
    def attached(self) -> bool:
        """Whether at least one session is currently wired in."""
        return bool(self._sessions)

    def _record_sampling(self, tracer: "Tracer") -> None:
        """Surface the tracer's sampling regime across all three sinks.

        Dense tracing (stride 1) records nothing; a sampled run gets a
        ``sampling`` JSONL record plus stride/fidelity gauges so report
        consumers can flag that heat and diagnostics are estimates.
        """
        info = tracer.sampling_info()
        if info is None:
            return
        self.sampling = dict(info)
        self.metrics.gauge("sampling_stride",
                           "shadow sampling stride (1-in-N words)"
                           ).set(info["sample"])
        self.metrics.gauge("sampling_estimated_fidelity",
                           "estimated diagnostic fidelity under sampling"
                           ).set(info["estimated_fidelity"])
        self._write({"type": "sampling", **info})

    def _record_backend(self, hooks: _SessionHooks) -> None:
        """Surface the tracer's execution-backend attribution once.

        Runs at finalisation (not attach) because launch counts and
        fallback totals only exist after the kernels ran.  Interpreter
        runs record nothing, keeping their artifacts byte-identical with
        history.
        """
        if hooks.backend_recorded or hooks.tracer is None:
            return
        info = hooks.tracer.backend_info()
        if info is None:
            return
        hooks.backend_recorded = True
        self.backend = dict(info)
        self.metrics.gauge("backend_fallbacks",
                           "kernel launches that fell to a slower backend"
                           ).set(info["fallbacks"])
        self._write({"type": "backend", **info})

    @property
    def events_dropped_total(self) -> float:
        """Events lost from retention across every attached session."""
        counter = self.metrics.counter(
            "repro_events_dropped_total",
            "driver events lost from retention (not spilled)",
            absolute=True)
        return sum(counter.series().values())

    # ------------------------------------------------------------------ #
    # sink helpers

    def _write(self, record: Mapping[str, Any]) -> None:
        if self.jsonl is not None:
            self.jsonl.write(record)

    def _room_in_timeline(self) -> bool:
        if len(self.timeline) >= self.max_timeline_events:
            self.dropped_timeline_events += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # driver events (EventLog listener)

    def _on_driver_event(self, hooks: _SessionHooks, event: Event) -> None:
        kind = event.kind.value
        proc = event.device.name
        m = self.metrics
        m.counter("driver_events_total",
                  "driver events by kind").inc(1, kind=kind, proc=proc)
        if event.cost:
            m.counter("driver_event_cost_seconds_total",
                      "simulated seconds charged by the UM driver"
                      ).inc(event.cost, kind=kind)
        if event.kind is EventKind.PAGE_FAULT:
            m.counter("page_fault_groups_total",
                      "fault groups serviced").inc(1, proc=proc)
            m.counter("page_fault_pages_total",
                      "faulting pages").inc(event.pages, proc=proc)
        elif event.kind is EventKind.MIGRATION:
            m.counter("migrated_pages_total",
                      "pages migrated on demand or by prefetch"
                      ).inc(event.pages, proc=proc)
        elif event.kind is EventKind.EVICTION:
            m.counter("evicted_pages_total",
                      "pages evicted to host for capacity").inc(event.pages)
        elif event.kind is EventKind.TRANSFER:
            m.counter("transfer_bytes_total",
                      "explicit cudaMemcpy bytes"
                      ).inc(event.nbytes, direction=event.detail or "?")
        elif event.kind is EventKind.DUPLICATION:
            m.counter("duplicated_pages_total",
                      "read-mostly copies created").inc(event.pages, proc=proc)
        elif event.kind is EventKind.INVALIDATION:
            m.counter("invalidated_pages_total",
                      "duplicated copies dropped on write"
                      ).inc(event.pages, proc=proc)
        elif event.kind is EventKind.REMOTE_ACCESS:
            m.counter("remote_access_bytes_total",
                      "bytes served over the link without migration"
                      ).inc(event.nbytes, proc=proc)

        drawn_tid: int | None = None
        if event.kind in _LINK_SPAN_KINDS and self._room_in_timeline():
            name = kind if event.kind is not EventKind.TRANSFER \
                else f"memcpy {event.detail}"
            args = {"pages": event.pages, "bytes": event.nbytes,
                    "detail": event.detail}
            self._cause_args(event, args)
            self.timeline.span(
                name, "memory", event.time, event.cost,
                pid=hooks.pid, tid=TRACK_LINK, args=args,
            )
            drawn_tid = TRACK_LINK
        elif event.kind in _DRIVER_INSTANT_KINDS and self._room_in_timeline():
            args = {"pages": event.pages, "proc": proc,
                    "detail": event.detail}
            self._cause_args(event, args)
            self.timeline.instant(
                kind, "memory", event.time, pid=hooks.pid, tid=TRACK_DRIVER,
                args=args,
            )
            drawn_tid = TRACK_DRIVER
        if event.cause is not None and drawn_tid is not None:
            hooks.event_points[event.id] = (event.time, drawn_tid)
            self._emit_flows(hooks, event, drawn_tid)
        if self.stream_driver_events:
            self._write(encode_driver_event(event))

    @staticmethod
    def _cause_args(event: Event, args: dict) -> None:
        """Fold the cause link into a timeline element's args (in place)."""
        c = event.cause
        if c is None:
            return
        if c.site:
            args["cause_site"] = c.site
        if c.kernel:
            args["cause_kernel"] = c.kernel

    def _emit_flows(self, hooks: _SessionHooks, event: Event, tid: int) -> None:
        """Draw flow arrows from the event's causes to the event.

        Two arrows can apply: one from the triggering kernel's span on the
        GPU track (vertical, at the event's own timestamp -- the kernel
        span encloses it because the simulated clock is frozen during the
        kernel body), and one from the upstream parent event that made
        this work necessary.
        """
        cause = event.cause
        assert cause is not None
        if (cause.kernel and event.kind in _LINK_SPAN_KINDS
                and self._room_in_timeline()):
            self._flow_seq += 1
            self.timeline.flow("cause", "cause", self._flow_seq,
                               event.time, TRACK_GPU, event.time, tid,
                               pid=hooks.pid)
        if cause.parent >= 0:
            parent = hooks.event_points.get(cause.parent)
            if parent is not None and self._room_in_timeline():
                self._flow_seq += 1
                self.timeline.flow("cause", "cause", self._flow_seq,
                                   parent[0], parent[1], event.time, tid,
                                   pid=hooks.pid)

    # ------------------------------------------------------------------ #
    # UM driver metrics hook

    def _metrics_hook(self, name: str, value: float,
                      labels: Mapping[str, str]) -> None:
        if name == "um_gpu_pages_in_use":
            self.metrics.gauge("gpu_pages_in_use",
                               "GPU-resident pages (managed + device)"
                               ).set(value)
            if self._active is not None and self._room_in_timeline():
                self.timeline.counter(
                    "gpu_pages_in_use", self._active.platform.clock.now,
                    {"pages": value}, pid=self._active.pid)
        elif name.endswith("_seconds"):
            self.metrics.histogram(name, "UM driver charged seconds"
                                   ).observe(value, **labels)
        else:
            self.metrics.counter(name + "_total",
                                 "UM driver per-access outcome"
                                 ).inc(value, **labels)

    # ------------------------------------------------------------------ #
    # runtime observer callbacks

    def on_alloc(self, alloc) -> None:  # noqa: D102
        self.metrics.counter("allocations_total", "allocations created"
                             ).inc(1, kind=alloc.kind.value)
        hooks = self._active
        if hooks is not None and self._room_in_timeline():
            self.timeline.instant(
                f"alloc {alloc.label or hex(alloc.base)}", "api",
                hooks.platform.clock.now, pid=hooks.pid, tid=TRACK_HOST,
                args={"bytes": alloc.size, "kind": alloc.kind.value})
        self._write({"type": "alloc", "label": alloc.label,
                     "base": alloc.base, "bytes": alloc.size,
                     "kind": alloc.kind.value,
                     "site": getattr(alloc, "site", ""),
                     "t": hooks.platform.clock.now if hooks else 0.0})

    def on_free(self, alloc) -> None:  # noqa: D102
        self.metrics.counter("frees_total", "allocations released"
                             ).inc(1, kind=alloc.kind.value)
        hooks = self._active
        self._write({"type": "free", "label": alloc.label,
                     "base": alloc.base,
                     "t": hooks.platform.clock.now if hooks else 0.0})

    def on_access(self, proc, alloc, byte_offset, elem_size, count,
                  is_write, indices, is_rmw) -> None:  # noqa: D102
        op = "rmw" if is_rmw else ("write" if is_write else "read")
        self.metrics.counter("accesses_total", "traced heap accesses"
                             ).inc(1, proc=proc.name, op=op)
        self.metrics.counter("access_bytes_total", "traced heap bytes"
                             ).inc(count * elem_size, proc=proc.name, op=op)

    def on_memcpy(self, dst, dst_off, src, src_off, nbytes, kind) -> None:  # noqa: D102
        self.metrics.counter("memcpys_total", "explicit cudaMemcpy calls"
                             ).inc(1, kind=kind.name)
        hooks = self._active
        self._write({
            "type": "memcpy", "kind": kind.name, "bytes": nbytes,
            "dst": getattr(dst, "label", None), "src": getattr(src, "label", None),
            "t": hooks.platform.clock.now if hooks else 0.0,
        })

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:  # noqa: D102
        hooks = self._active
        if hooks is None:
            return
        hooks.pending_kernels.append((name, grid, block,
                                      hooks.platform.clock.now))

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:  # noqa: D102
        hooks = self._active
        if hooks is None:
            return
        pending = hooks.pending_kernels
        for i, (pname, pgrid, pblock, _) in enumerate(pending):
            if (pname, pgrid, pblock) == (name, grid, block):
                break
        else:
            i = 0 if pending else -1
        start = pending.pop(i)[3] if i >= 0 else hooks.platform.clock.now
        now = hooks.platform.clock.now
        span = now - start if now > start else duration
        self.metrics.counter("kernel_launches_total", "kernel launches"
                             ).inc(1, kernel=name)
        self.metrics.histogram("kernel_duration_seconds",
                               "simulated kernel durations"
                               ).observe(duration, kernel=name)
        if self._room_in_timeline():
            self.timeline.span(name, "kernel", start, span,
                               pid=hooks.pid, tid=TRACK_GPU,
                               args={"grid": grid, "block": block,
                                     "duration_s": duration})
        self._write({"type": "kernel", "name": name, "grid": grid,
                     "block": block, "t_start": start,
                     "duration": duration})

    def on_advice(self, alloc, advice, byte_offset, nbytes, device_id) -> None:  # noqa: D102
        self.metrics.counter("advice_total", "cudaMemAdvise applications"
                             ).inc(1, advice=advice.name)
        hooks = self._active
        if hooks is not None and self._room_in_timeline():
            self.timeline.instant(
                advice.name, "api", hooks.platform.clock.now,
                pid=hooks.pid, tid=TRACK_HOST,
                args={"allocation": alloc.label, "bytes": nbytes})
        self._write({"type": "advice", "advice": advice.name,
                     "allocation": alloc.label, "offset": byte_offset,
                     "bytes": nbytes, "device_id": device_id})

    # ------------------------------------------------------------------ #
    # epochs and diagnostics

    def _on_epoch(self, hooks: _SessionHooks, epoch: int) -> None:
        now = hooks.platform.clock.now
        self.metrics.counter("epochs_total", "tracing epochs closed").inc(1)
        if self._room_in_timeline():
            self.timeline.epoch_marker(epoch, now, pid=hooks.pid)
        self._write({"type": "epoch", "epoch": epoch, "t": now})

    def record_diagnosis(self, diagnosis: "Diagnosis") -> None:
        """Stream one per-epoch diagnostic (allocations + findings)."""
        result = diagnosis.result
        self.metrics.counter("diagnostics_total", "diagnostic passes").inc(1)
        self.metrics.counter("findings_total", "anti-pattern findings").inc(
            len(diagnosis.findings))
        self._write({
            "type": "diagnosis",
            "epoch": result.epoch,
            "allocations": [
                {
                    "name": r.name, "bytes": r.alloc.size,
                    "freed": r.freed, "density_pct": r.density_pct,
                    "alternating": r.alternating,
                    "cpu_writes": r.counts.cpu_written,
                    "gpu_writes": r.counts.gpu_written,
                }
                for r in result.reports
            ],
            "findings": [
                {"pattern": f.pattern.value, "allocation": f.name,
                 "detail": f.detail}
                for f in diagnosis.findings
            ],
        })

    # ------------------------------------------------------------------ #
    # finalisation

    def _finalize_session(self, hooks: _SessionHooks) -> None:
        self._record_backend(hooks)
        self.metrics.gauge("sim_time_seconds",
                           "simulated seconds on the session clock"
                           ).set(hooks.platform.clock.now,
                                 session=str(hooks.pid))
        for name, value in hooks.platform.link.stats.as_dict().items():
            self.metrics.gauge(f"link_{name}",
                               "accumulated interconnect traffic"
                               ).set(value, session=str(hooks.pid))

    def finalize_session_metrics(self) -> None:
        """Fold end-of-run gauges (sim time, link stats) into the registry.

        ``detach`` finalises each session as it unwires it; this covers
        sessions still attached at flush time (gauge sets are idempotent).
        """
        for hooks in self._sessions:
            self._finalize_session(hooks)

    def flush(self, out_dir: str | Path) -> dict[str, Path]:
        """Write ``timeline.json`` and ``metrics.prom`` into ``out_dir``.

        Closes the JSONL stream if the recorder owns one.  Returns the
        paths written, keyed by artifact name.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        self.finalize_session_metrics()
        paths: dict[str, Path] = {}
        timeline_path = out / "timeline.json"
        timeline_path.write_text(self.timeline.to_json(other_data={
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "dropped_events": self.dropped_timeline_events,
        }))
        paths["timeline"] = timeline_path
        metrics_path = out / "metrics.prom"
        metrics_path.write_text(self.metrics.to_prometheus())
        paths["metrics"] = metrics_path
        if self.heat is not None:
            self.heat.flush_current()
            csv_path = out / "heat.csv"
            csv_path.write_text(self.heat.to_csv())
            paths["heat_csv"] = csv_path
            paths["heat_npz"] = self.heat.to_npz(out / "heat.npz")
        if self.jsonl is not None:
            self.jsonl.close()
            paths["events"] = out / "events.jsonl"
        return paths

"""Chrome trace-event export: render a simulated run as a timeline.

The builder accumulates events in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by Perfetto and ``chrome://tracing``:

* **kernel spans** on the GPU track (``ph: "X"`` complete events),
* **memcpy / migration / eviction spans** on the interconnect track,
* **fault-group instants** (``ph: "i"``) on the UM-driver track,
* **epoch markers** spanning the whole process,
* **counter series** (``ph: "C"``) such as GPU page residency.

All timestamps come from the simulated clock (:class:`~repro.memsim.SimClock`),
converted from seconds to the format's microseconds.  One builder can hold
several sessions; each gets its own ``pid`` so Perfetto renders them as
separate processes.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = ["TimelineBuilder", "TRACK_GPU", "TRACK_LINK", "TRACK_DRIVER",
           "TRACK_HOST", "TRACK_MARKS"]

#: Thread-track ids within one simulated session (one Perfetto row each).
TRACK_HOST = 1      #: host-side API activity (alloc/free, advice)
TRACK_GPU = 2       #: kernel executions
TRACK_LINK = 3      #: interconnect traffic (memcpy, migration, eviction)
TRACK_DRIVER = 4    #: UM driver activity (faults, populate, map)
TRACK_MARKS = 5     #: epoch markers and diagnostics

_TRACK_NAMES = {
    TRACK_HOST: "Host API",
    TRACK_GPU: "GPU kernels",
    TRACK_LINK: "Interconnect",
    TRACK_DRIVER: "UM driver",
    TRACK_MARKS: "Epochs",
}


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds (rounded for stable JSON)."""
    return round(seconds * 1e6, 3)


class TimelineBuilder:
    """Accumulates trace events and serialises them to timeline JSON."""

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._named: set[tuple[int, int | None]] = set()

    # ------------------------------------------------------------------ #
    # naming / metadata

    def declare_process(self, pid: int, name: str) -> None:
        """Label a pid (one simulated session) and its standard tracks."""
        if (pid, None) in self._named:
            return
        self._named.add((pid, None))
        self._events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        for tid, tname in _TRACK_NAMES.items():
            self._events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
            self._events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "args": {"sort_index": tid},
            })

    # ------------------------------------------------------------------ #
    # event kinds

    def span(self, name: str, cat: str, start_s: float, dur_s: float,
             *, pid: int = 1, tid: int = TRACK_GPU,
             args: Mapping[str, Any] | None = None) -> None:
        """A complete event (``ph: "X"``) from ``start_s`` for ``dur_s``."""
        ev: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": _us(start_s), "dur": max(_us(dur_s), 0.001),
            "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    def instant(self, name: str, cat: str, ts_s: float,
                *, pid: int = 1, tid: int = TRACK_DRIVER, scope: str = "t",
                args: Mapping[str, Any] | None = None) -> None:
        """An instant event (``ph: "i"``) at ``ts_s``."""
        ev: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": scope,
            "ts": _us(ts_s), "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    def counter(self, name: str, ts_s: float, values: Mapping[str, float],
                *, pid: int = 1) -> None:
        """A counter sample (``ph: "C"``) -- Perfetto draws it as an area."""
        self._events.append({
            "name": name, "ph": "C", "ts": _us(ts_s),
            "pid": pid, "tid": 0, "args": dict(values),
        })

    def epoch_marker(self, epoch: int, ts_s: float, *, pid: int = 1,
                     args: Mapping[str, Any] | None = None) -> None:
        """Mark the close of a tracing epoch (process-scoped instant)."""
        self.instant(f"epoch {epoch}", "epoch", ts_s, pid=pid,
                     tid=TRACK_MARKS, scope="p", args=args)

    def flow(self, name: str, cat: str, flow_id: int,
             start_ts_s: float, start_tid: int,
             end_ts_s: float, end_tid: int, *, pid: int = 1) -> None:
        """A flow arrow (``ph: "s"``/``"f"``) connecting two track points.

        Perfetto draws it as an arrow from the slice enclosing the start
        point to the slice enclosing the end point -- used to connect a
        triggering kernel to the migration/eviction it caused.  Both
        endpoints must share ``name``/``cat``/``id`` for the format to
        bind them.
        """
        self._events.append({
            "name": name, "cat": cat, "ph": "s", "id": flow_id,
            "ts": _us(start_ts_s), "pid": pid, "tid": start_tid,
        })
        self._events.append({
            "name": name, "cat": cat, "ph": "f", "bp": "e", "id": flow_id,
            "ts": _us(end_ts_s), "pid": pid, "tid": end_tid,
        })

    # ------------------------------------------------------------------ #
    # output

    def __len__(self) -> int:
        return len(self._events)

    def to_dict(self, *, other_data: Mapping[str, Any] | None = None) -> dict:
        """The full trace object (``traceEvents`` plus metadata)."""
        return {
            "traceEvents": sorted(self._events,
                                  key=lambda e: (e.get("ts", -1.0), e["pid"])),
            "displayTimeUnit": "ms",
            "otherData": dict(other_data or {}),
        }

    def to_json(self, *, other_data: Mapping[str, Any] | None = None,
                indent: int | None = None) -> str:
        """Serialised timeline, ready for Perfetto / ``chrome://tracing``."""
        return json.dumps(self.to_dict(other_data=other_data), indent=indent)

"""Labeled metrics registry with Prometheus-style text exposition.

The simulator's observability story needs one place where every layer --
the unified-memory driver, the interconnect, the CUDA runtime, the
XPlacer tracer -- can increment named series without knowing how they are
exported.  :class:`MetricsRegistry` provides the three classic instrument
kinds (counter, gauge, histogram), each with optional label dimensions,
plus two read-side views: :meth:`MetricsRegistry.snapshot` for
machine-readable dicts and :meth:`MetricsRegistry.to_prometheus` for the
text exposition format scraped by Prometheus-compatible tooling.

Everything is in-process and dependency-free; "scraping" a simulated run
means writing the exposition to ``metrics.prom`` next to the other run
artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds-oriented, log-spaced).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf"),
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name {name!r} must not start with a digit")
    return name


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    def esc(v: str) -> str:
        return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    return "{" + ",".join(f'{k}="{esc(v)}"' for k, v in key) + "}"


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` value per the exposition format.

    Backslashes and newlines are the only characters escaped on HELP
    lines (label values additionally escape quotes -- see
    ``_format_labels``).
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


@dataclass
class _Series:
    """One (metric, label-set) time series."""

    value: float = 0.0


class _Instrument:
    """Common machinery: a named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = help
        self._series: dict[tuple[tuple[str, str], ...], _Series] = {}

    def _child(self, labels: Mapping[str, str]) -> _Series:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def _new_series(self) -> _Series:
        return _Series()

    def series(self) -> dict[tuple[tuple[str, str], ...], float]:
        """Label-key -> current value."""
        return {k: s.value for k, s in self._series.items()}

    def expose(self) -> Iterable[str]:
        """Lines of Prometheus text exposition for this family."""
        yield f"# HELP {self.name} {_escape_help(self.help or self.name)}"
        yield f"# TYPE {self.name} {self.kind}"
        for key, s in sorted(self._series.items()):
            yield f"{self.name}{_format_labels(key)} {_format_value(s.value)}"


class Counter(_Instrument):
    """A monotonically increasing value (events, pages, bytes)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._child(labels).value += amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 if never incremented)."""
        return self._series.get(_label_key(labels), _Series()).value


class Gauge(_Instrument):
    """A value that can go up and down (residency, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        self._child(labels).value = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        self._child(labels).value += amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 if never set)."""
        return self._series.get(_label_key(labels), _Series()).value


@dataclass
class _HistSeries(_Series):
    buckets: list[int] = field(default_factory=list)
    count: int = 0

    # ``value`` doubles as the running sum.


class Histogram(_Instrument):
    """A distribution with cumulative buckets (latencies, sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.bounds: tuple[float, ...] = tuple(bounds)

    def _new_series(self) -> _HistSeries:
        return _HistSeries(buckets=[0] * len(self.bounds))

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        s = self._child(labels)
        assert isinstance(s, _HistSeries)
        s.count += 1
        s.value += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                s.buckets[i] += 1
                break

    def expose(self) -> Iterable[str]:  # noqa: D102
        yield f"# HELP {self.name} {_escape_help(self.help or self.name)}"
        yield f"# TYPE {self.name} histogram"
        for key, s in sorted(self._series.items()):
            assert isinstance(s, _HistSeries)
            cumulative = 0
            for bound, n in zip(self.bounds, s.buckets):
                cumulative += n
                bkey = key + (("le", _format_value(bound)),)
                yield (f"{self.name}_bucket{_format_labels(bkey)} "
                       f"{cumulative}")
            yield f"{self.name}_sum{_format_labels(key)} {_format_value(s.value)}"
            yield f"{self.name}_count{_format_labels(key)} {s.count}"

    def series(self) -> dict[tuple[tuple[str, str], ...], float]:
        """Label-key -> observation count (sum lives in snapshot())."""
        return {k: float(s.count) for k, s in self._series.items()}  # type: ignore[union-attr]


class MetricsRegistry:
    """A namespace of instruments, created on first use.

    >>> reg = MetricsRegistry()
    >>> reg.counter("faults_total", "fault groups").inc(3, proc="GPU")
    >>> reg.counter("faults_total").value(proc="GPU")
    3.0
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, cls, name: str, help: str, *, absolute: bool = False,
             **kwargs) -> _Instrument:
        if self.prefix and not absolute:
            name = self.prefix + name
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, help, **kwargs)
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}")
        return inst

    def counter(self, name: str, help: str = "", *,
                absolute: bool = False) -> Counter:
        """Get or create a counter family.

        :param absolute: register ``name`` verbatim, skipping the
            registry prefix (cross-package series with a fixed contract
            name, e.g. ``repro_events_dropped_total``).
        """
        return self._get(Counter, name, help, absolute=absolute)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", *,
              absolute: bool = False) -> Gauge:
        """Get or create a gauge family (``absolute`` skips the prefix)."""
        return self._get(Gauge, name, help, absolute=absolute)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS, *,
                  absolute: bool = False) -> Histogram:
        """Get or create a histogram family (``absolute`` skips the prefix)."""
        return self._get(Histogram, name, help, buckets=buckets,
                         absolute=absolute)  # type: ignore[return-value]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Nested dict: metric name -> {label string -> value}.

        Histogram families report observation counts; their sums appear
        only in the exposition (keeps the snapshot shape uniform).
        """
        out: dict[str, dict[str, float]] = {}
        for name, inst in sorted(self._instruments.items()):
            out[name] = {
                _format_labels(key) or "": value
                for key, value in inst.series().items()
            }
        return out

    def to_prometheus(self) -> str:
        """Full text exposition (``metrics.prom`` content)."""
        lines: list[str] = []
        for _, inst in sorted(self._instruments.items()):
            lines.extend(inst.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return ((self.prefix + name) if self.prefix else name) in self._instruments

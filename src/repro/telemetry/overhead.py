"""Self-profiling harness: what does observing a run cost us?

The paper's Table III reports the wall-clock overhead of XPlacer's
compiled instrumentation (5x-20x, ~15x average).  This module reproduces
the *shape* of that measurement for the Python stack, per workload and per
observation layer:

* ``plain``     -- no tracer, no recorder: the telemetry path disabled.
* ``traced``    -- XPlacer tracer attached (the paper's Table III column).
* ``telemetry`` -- tracer plus a full :class:`TelemetryRecorder` (metrics,
  timeline and JSONL sinks all live).
* ``heat``      -- tracer plus a :class:`~repro.heatmap.store.HeatStore`
  with source attribution: the ``repro-report`` configuration.  The
  acceptance bar is < 2x over ``traced``.
* ``detached``  -- a recorder attached and then detached before the run:
  must cost the same as ``plain`` (regression guard that ``detach``
  really unwires every hook).

Usage::

    python -m repro.telemetry.overhead --repeats 3
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from typing import Callable

from ..workloads.base import Session, make_session

from .events_jsonl import StringJsonl
from .recorder import TelemetryRecorder

__all__ = ["OVERHEAD_WORKLOADS", "measure_overhead", "format_rows", "main"]


def _pathfinder(session: Session) -> None:
    from ..workloads.rodinia import Pathfinder
    Pathfinder(session, cols=60_000, rows=240, pyramid_height=5).run()


def _smithwaterman(session: Session) -> None:
    from ..workloads.smithwaterman import SmithWaterman
    SmithWaterman(session, 160).run()


def _lulesh(session: Session) -> None:
    from ..workloads.lulesh import Lulesh
    Lulesh(session, 8).run(6)


#: name -> runner(session).  All runs use footprint mode (no numpy
#: backing): materialized runs are dominated by allocator/page-cache
#: noise at measurable sizes, while footprint runs measure exactly the
#: simulator + instrumentation code paths the ratio is about.
OVERHEAD_WORKLOADS: dict[str, Callable[[Session], None]] = {
    "sw": _smithwaterman,
    "lulesh": _lulesh,
    "pathfinder": _pathfinder,
}


def _timed(run: Callable[[], None], repeats: int) -> float:
    import gc
    run()  # warm-up: imports, allocator pools, bytecode caches
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_overhead(
    workloads: tuple[str, ...] = ("sw", "lulesh"),
    *,
    platform: str = "intel-pascal",
    repeats: int = 3,
) -> list[dict]:
    """Time each workload under the four observation configurations.

    Returns one row per workload with absolute times and ratios against
    the plain run (the paper's "overhead factor").
    """
    rows: list[dict] = []
    for name in workloads:
        runner = OVERHEAD_WORKLOADS[name]

        def plain() -> None:
            runner(make_session(platform, trace=False, materialize=False))

        def traced() -> None:
            runner(make_session(platform, trace=True, materialize=False))

        def telemetry() -> None:
            session = make_session(platform, trace=True, materialize=False)
            recorder = TelemetryRecorder(jsonl=StringJsonl())
            recorder.attach(session.runtime, session.tracer)
            try:
                runner(session)
            finally:
                recorder.detach()

        def heat() -> None:
            from ..heatmap.store import HeatStore
            session = make_session(platform, trace=True, materialize=False)
            assert session.tracer is not None
            session.tracer.heat = HeatStore()
            runner(session)

        def detached() -> None:
            session = make_session(platform, trace=False, materialize=False)
            recorder = TelemetryRecorder(jsonl=None)
            recorder.attach(session.runtime)
            recorder.detach()
            runner(session)

        plain_s = _timed(plain, repeats)
        traced_s = _timed(traced, repeats)
        telemetry_s = _timed(telemetry, repeats)
        heat_s = _timed(heat, repeats)
        detached_s = _timed(detached, repeats)
        rows.append({
            "workload": name,
            "plain_s": plain_s,
            "traced_s": traced_s,
            "telemetry_s": telemetry_s,
            "heat_s": heat_s,
            "detached_s": detached_s,
            "traced_x": traced_s / plain_s if plain_s else float("inf"),
            "telemetry_x": telemetry_s / plain_s if plain_s else float("inf"),
            "heat_x": heat_s / plain_s if plain_s else float("inf"),
            "heat_vs_traced_x": heat_s / traced_s if traced_s else float("inf"),
            "detached_x": detached_s / plain_s if plain_s else float("inf"),
        })
    return rows


def format_rows(rows: list[dict]) -> str:
    """Render the Table-III-style text block."""
    out = io.StringIO()
    out.write(f"{'workload':14s}{'plain':>9s}{'traced':>9s}{'+telem':>9s}"
              f"{'+heat':>9s}{'detach':>9s}"
              f"{'traced':>8s}{'telem':>8s}{'heat':>8s}{'detach':>8s}\n")
    for r in rows:
        out.write(
            f"{r['workload']:14s}"
            f"{r['plain_s']:8.3f}s{r['traced_s']:8.3f}s"
            f"{r['telemetry_s']:8.3f}s{r.get('heat_s', 0.0):8.3f}s"
            f"{r['detached_s']:8.3f}s"
            f"{r['traced_x']:7.1f}x{r['telemetry_x']:7.1f}x"
            f"{r.get('heat_x', 0.0):7.1f}x{r['detached_x']:7.1f}x\n")
    if rows:
        mean = sum(r["telemetry_x"] for r in rows) / len(rows)
        out.write(f"{'average telemetry overhead':40s}{mean:8.1f}x\n")
        heat_rows = [r for r in rows if "heat_vs_traced_x" in r]
        if heat_rows:
            mean_heat = (sum(r["heat_vs_traced_x"] for r in heat_rows)
                         / len(heat_rows))
            out.write(f"{'average heat overhead vs traced':40s}"
                      f"{mean_heat:8.2f}x\n")
    return out.getvalue()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.telemetry.overhead``)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace-overhead",
        description="Measure instrumentation overhead (paper Table III shape).")
    parser.add_argument("--workloads", nargs="*",
                        default=["sw", "lulesh"],
                        choices=sorted(OVERHEAD_WORKLOADS),
                        help="workloads to time")
    parser.add_argument("--platform", default="intel-pascal",
                        help="platform preset (default: intel-pascal)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per configuration")
    args = parser.parse_args(argv)
    rows = measure_overhead(tuple(args.workloads), platform=args.platform,
                            repeats=args.repeats)
    sys.stdout.write(format_rows(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

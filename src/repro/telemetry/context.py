"""Process-wide active recorder (deliberately import-light).

:func:`repro.workloads.base.make_session` consults this module so that a
recorder installed by a CLI (``repro-trace``, ``xplacer-eval
--telemetry-dir``) is attached to every session the workloads create,
without any workload knowing about telemetry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import TelemetryRecorder

__all__ = ["install", "uninstall", "current_recorder", "causes_requested"]

_active: "TelemetryRecorder | None" = None
_track_causes = False


def install(recorder: "TelemetryRecorder", *,
            track_causes: bool = False) -> "TelemetryRecorder":
    """Make ``recorder`` the process-wide active recorder; returns it.

    With ``track_causes`` every session auto-attached through this context
    switches its UM driver into causal-provenance mode (see
    :meth:`~repro.telemetry.recorder.TelemetryRecorder.attach`).
    """
    global _active, _track_causes
    _active = recorder
    _track_causes = track_causes
    return recorder


def uninstall() -> None:
    """Clear the active recorder (sessions stop auto-attaching)."""
    global _active, _track_causes
    _active = None
    _track_causes = False


def current_recorder() -> "TelemetryRecorder | None":
    """The active recorder, or ``None``."""
    return _active


def causes_requested() -> bool:
    """Whether auto-attached sessions should track causal provenance."""
    return _track_causes

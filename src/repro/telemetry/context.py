"""Process-wide active recorder (deliberately import-light).

:func:`repro.workloads.base.make_session` consults this module so that a
recorder installed by a CLI (``repro-trace``, ``xplacer-eval
--telemetry-dir``) is attached to every session the workloads create,
without any workload knowing about telemetry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import TelemetryRecorder

__all__ = ["install", "uninstall", "current_recorder"]

_active: "TelemetryRecorder | None" = None


def install(recorder: "TelemetryRecorder") -> "TelemetryRecorder":
    """Make ``recorder`` the process-wide active recorder; returns it."""
    global _active
    _active = recorder
    return recorder


def uninstall() -> None:
    """Clear the active recorder (sessions stop auto-attaching)."""
    global _active
    _active = None


def current_recorder() -> "TelemetryRecorder | None":
    """The active recorder, or ``None``."""
    return _active

"""Unified telemetry for the simulated CPU/GPU stack.

The paper's central claim is that *observing* driver-level memory
behaviour is what lets a tool explain heterogeneous performance; this
package is the reproduction's observation pipeline.  One
:class:`TelemetryRecorder` subscribes to the simulated CUDA runtime (like
the XPlacer tracer), taps the unified-memory driver's event log and
metric hooks, and fans everything out to three sinks:

* :mod:`repro.telemetry.metrics` -- labeled counters/gauges/histograms
  with Prometheus-style text exposition (``metrics.prom``);
* :mod:`repro.telemetry.timeline` -- Chrome trace-event JSON for
  Perfetto / ``chrome://tracing`` (``timeline.json``);
* :mod:`repro.telemetry.events_jsonl` -- manifest-led structured event
  streaming (``events.jsonl``).

:mod:`repro.telemetry.overhead` measures what all of this costs (the
shape of the paper's Table III), and :mod:`repro.telemetry.cli` is the
``repro-trace`` command that replays any workload with telemetry on.
"""

from .context import current_recorder, install, uninstall
from .events_jsonl import (
    SCHEMA_VERSION,
    JsonlWriter,
    StringJsonl,
    encode_driver_event,
    read_jsonl,
    run_manifest,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .recorder import TelemetryRecorder

# NOTE: repro.telemetry.overhead and repro.telemetry.cli import the
# workloads package (which itself consults repro.telemetry.context), so
# they are intentionally NOT imported here -- import them as submodules.
from .timeline import (
    TRACK_DRIVER,
    TRACK_GPU,
    TRACK_HOST,
    TRACK_LINK,
    TRACK_MARKS,
    TimelineBuilder,
)

__all__ = [
    "current_recorder",
    "install",
    "uninstall",
    "SCHEMA_VERSION",
    "JsonlWriter",
    "StringJsonl",
    "encode_driver_event",
    "read_jsonl",
    "run_manifest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryRecorder",
    "TRACK_DRIVER",
    "TRACK_GPU",
    "TRACK_HOST",
    "TRACK_LINK",
    "TRACK_MARKS",
    "TimelineBuilder",
]

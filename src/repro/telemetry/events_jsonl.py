"""Structured event streaming: one JSON object per line.

The JSONL stream is the machine-readable companion of the human-oriented
timeline: every driver event, tracer record and per-epoch diagnostic is
appended as it happens, so a run can be post-processed (or tailed) without
any repro imports.  The first record of every stream is a **run manifest**
describing the platform preset, workload, configuration and package
version -- the provenance block that makes an ``events.jsonl`` file
self-describing.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Any, Mapping

from .. import __version__
from ..memsim import Event, Platform

__all__ = [
    "JsonlWriter",
    "StringJsonl",
    "run_manifest",
    "encode_driver_event",
    "read_jsonl",
    "SCHEMA_VERSION",
]

#: Bumped whenever record shapes change incompatibly.
#: v2: driver events carry a stable ``id`` and an optional ``cause``
#: provenance block (site/kernel/api/alloc/parent).
SCHEMA_VERSION = 2


def run_manifest(
    platform: Platform | None = None,
    *,
    workload: str = "",
    config: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the manifest record that must lead every stream."""
    manifest: dict[str, Any] = {
        "type": "manifest",
        "schema_version": SCHEMA_VERSION,
        "package": "repro",
        "version": __version__,
        "workload": workload,
        "config": dict(config or {}),
    }
    if platform is not None:
        manifest["platform"] = {
            "name": platform.name,
            "cpu": platform.cpu.name,
            "gpu": platform.gpu.name,
            "gpu_memory_bytes": platform.gpu.memory_bytes,
            "link": platform.link.name,
            "link_bandwidth": platform.link.bandwidth,
            "link_coherent": platform.link.coherent,
        }
    return manifest


def encode_driver_event(event: Event) -> dict[str, Any]:
    """A :class:`~repro.memsim.Event` as a flat JSONL record.

    The ``cause`` block is only present on events recorded with causal
    tracking enabled, so plain traced streams stay compact.
    """
    record: dict[str, Any] = {
        "type": "driver_event",
        "id": event.id,
        "kind": event.kind.value,
        "t": event.time,
        "proc": event.device.name,
        "pages": event.pages,
        "bytes": event.nbytes,
        "cost": event.cost,
        "detail": event.detail,
    }
    if event.cause is not None:
        c = event.cause
        record["cause"] = {
            "site": c.site,
            "kernel": c.kernel,
            "api": c.api,
            "alloc": c.alloc,
            "parent": c.parent,
        }
    return record


class JsonlWriter:
    """Append-only JSONL sink over a file path or text stream.

    The writer enforces the manifest-first protocol: the first record
    written must be a manifest (``type: "manifest"``), matching what the
    CLI consumers and the acceptance tests expect.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = path.open("w", encoding="utf-8")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self.records = 0

    def write(self, record: Mapping[str, Any]) -> None:
        """Append one record (a JSON-serialisable mapping)."""
        if "type" not in record:
            raise ValueError("every JSONL record needs a 'type' field")
        if self.records == 0 and record["type"] != "manifest":
            raise ValueError("the first JSONL record must be the run manifest")
        self._stream.write(json.dumps(record, default=_default) + "\n")
        self.records += 1

    def close(self) -> None:
        """Flush and (for path targets) close the underlying stream."""
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _default(obj: Any) -> Any:
    """Last-resort encoder: enums by value, numpy scalars by item."""
    value = getattr(obj, "value", None)
    if value is not None and isinstance(value, (str, int, float)):
        return value
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of a JSONL file (test/analysis helper)."""
    out: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class StringJsonl(JsonlWriter):
    """In-memory JSONL sink (tests, ``--stdout`` streaming)."""

    def __init__(self) -> None:
        super().__init__(io.StringIO())

    def getvalue(self) -> str:
        """The stream content so far."""
        assert isinstance(self._stream, io.StringIO)
        return self._stream.getvalue()

"""``repro-trace``: replay any workload with full telemetry enabled.

One command turns a simulated run into a set of machine-readable run
artifacts::

    repro-trace --workload pathfinder --platform pcie --out /tmp/t

drops into ``/tmp/t``:

* ``timeline.json``  -- Chrome trace-event timeline (open in Perfetto or
  ``chrome://tracing``),
* ``events.jsonl``   -- structured event stream, manifest first,
* ``metrics.prom``   -- Prometheus text exposition of all counters.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from ..analysis import diagnose
from ..workloads.base import Session, WorkloadRun, make_session

from . import context
from .events_jsonl import JsonlWriter
from .recorder import TelemetryRecorder

__all__ = ["main", "WORKLOADS", "PLATFORM_ALIASES", "run_traced"]

#: Friendly platform spellings accepted by ``--platform``.
PLATFORM_ALIASES = {
    "pcie": "intel-pascal",
    "pcie-pascal": "intel-pascal",
    "pcie-volta": "intel-volta",
    "nvlink": "power9-volta",
    "intel-pascal": "intel-pascal",
    "intel-volta": "intel-volta",
    "power9-volta": "power9-volta",
}


def _pathfinder(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Pathfinder
    return Pathfinder(session, cols=8192, rows=40, pyramid_height=8).run()


def _pathfinder_opt(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import OverlappedPathfinder
    return OverlappedPathfinder(session, cols=8192, rows=40,
                                pyramid_height=8).run()


def _lulesh(session: Session) -> WorkloadRun:
    from ..workloads.lulesh import Lulesh
    return Lulesh(session, 8).run(6)


def _sw(session: Session) -> WorkloadRun:
    from ..workloads.smithwaterman import SmithWaterman
    return SmithWaterman(session, 192).run()


def _sw_rotated(session: Session) -> WorkloadRun:
    from ..workloads.smithwaterman import RotatedSmithWaterman
    return RotatedSmithWaterman(session, 192).run()


def _sw_advised(session: Session) -> WorkloadRun:
    from ..workloads.smithwaterman import AdvisedSmithWaterman
    return AdvisedSmithWaterman(session, 192).run()


def _backprop(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Backprop
    return Backprop(session, input_size=4096).run()


def _cfd(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Cfd
    return Cfd(session, cells=2048).run()


def _gaussian(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Gaussian
    return Gaussian(session, size=64).run()


def _lud(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Lud
    return Lud(session, size=64).run()


def _nn(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import NearestNeighbor
    return NearestNeighbor(session, records=4096).run()


def _spatter_stride(session: Session) -> WorkloadRun:
    from ..workloads.spatter import SpatterWorkload, uniform_stride
    return SpatterWorkload(session, uniform_stride(8, count=64)).run()


def _spatter_indirect(session: Session) -> WorkloadRun:
    from ..workloads.spatter import SpatterWorkload, indirection
    return SpatterWorkload(session, indirection(length=256,
                                                spread=65536)).run()


#: name -> runner(session) -> WorkloadRun, at diagnosis-friendly sizes.
WORKLOADS: dict[str, Callable[[Session], WorkloadRun]] = {
    "pathfinder": _pathfinder,
    "pathfinder-opt": _pathfinder_opt,
    "lulesh": _lulesh,
    "sw": _sw,
    "sw-rotated": _sw_rotated,
    "sw-advised": _sw_advised,
    "backprop": _backprop,
    "cfd": _cfd,
    "gaussian": _gaussian,
    "lud": _lud,
    "nn": _nn,
    "spatter-stride": _spatter_stride,
    "spatter-indirect": _spatter_indirect,
}


def mini_cuda_workloads() -> tuple[str, ...]:
    """Names of the interpreted mini-CUDA catalogue programs (``mc-*``)."""
    from ..workloads.minicuda import CATALOG
    return tuple(CATALOG)


def _run_mini_cuda(workload: str, preset: str, recorder: TelemetryRecorder,
                   *, backend: str) -> None:
    """Run one mini-CUDA catalogue program with telemetry attached.

    The interpreter path wires differently from sessions: the tracer is
    *bound* (not subscribed) by the interpreter itself, so the recorder
    must attach to the interpreter's runtime/tracer pair after
    construction and before the program runs.
    """
    from ..instrument import instrument as _instrument, parse
    from ..interp.interpreter import Interpreter
    from ..memsim import PLATFORMS
    from ..runtime import Tracer
    from ..workloads.minicuda import CATALOG

    unit = parse(CATALOG[workload]())
    _instrument(unit)
    interp = Interpreter(unit, platform=PLATFORMS[preset](), tracer=Tracer(),
                         source_name=f"{workload}.cu", backend=backend)
    recorder.attach(interp.runtime, interp.tracer, label=workload)
    interp.run("main")
    recorder.record_diagnosis(
        diagnose(interp.tracer, include_unnamed=True))
    recorder.detach()
    sys.stdout.write(interp.stdout)


def run_traced(workload: str, platform: str, out_dir: str | Path,
               *, materialize: bool = True,
               backend: str = "auto") -> dict[str, Path]:
    """Run ``workload`` on ``platform`` with telemetry; write artifacts.

    ``backend`` selects the execution backend for mini-CUDA (``mc-*``)
    workloads -- ``auto`` vectorizes when provable, else per-thread
    codegen, else the tree-walking interpreter; Session workloads run
    native Python and ignore it.  Returns the artifact paths
    (``timeline``, ``metrics``, ``events``).
    """
    preset = PLATFORM_ALIASES.get(platform, platform)
    mini = workload in mini_cuda_workloads()
    if not mini:
        runner = WORKLOADS[workload]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    recorder = TelemetryRecorder(jsonl=JsonlWriter(out / "events.jsonl"))
    recorder.workload = workload
    recorder.config = {"platform": preset, "materialize": materialize}
    if mini:
        recorder.config["backend"] = backend
        _run_mini_cuda(workload, preset, recorder, backend=backend)
        paths = recorder.flush(out)
        for name, path in sorted(paths.items()):
            print(f"  {name:9s} {path}")
        return paths
    context.install(recorder)
    try:
        session = make_session(preset, trace=True, materialize=materialize)
        run = runner(session)
        if session.tracer is not None:
            recorder.record_diagnosis(
                diagnose(session.tracer, include_unnamed=True))
        recorder.detach()
    finally:
        context.uninstall()
    paths = recorder.flush(out)
    summary = {k: v for k, v in run.stats.items()
               if isinstance(v, (int, float))}
    print(f"{workload} on {preset}: sim_time={run.sim_time:.6f}s "
          f"fault_groups={summary.get('fault_groups', 0):.0f} "
          f"migrated_pages={summary.get('migrated_pages', 0):.0f}")
    for name, path in sorted(paths.items()):
        print(f"  {name:9s} {path}")
    return paths


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-trace`` / ``python -m repro.telemetry``."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Replay a workload on the simulated stack with unified "
                    "telemetry (Perfetto timeline, JSONL events, metrics).")
    parser.add_argument("--workload", default="pathfinder",
                        choices=sorted(WORKLOADS) + sorted(
                            mini_cuda_workloads()),
                        help="workload to replay (default: pathfinder); "
                             "mc-* names run interpreted mini-CUDA programs")
    from ..codegen import BACKENDS
    parser.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution backend for mc-* workloads: auto "
                             "(default) vectorizes when provable, falling "
                             "back to per-thread codegen, then interp")
    parser.add_argument("--platform", default="pcie",
                        help="platform preset or alias: "
                             + ", ".join(sorted(PLATFORM_ALIASES)))
    parser.add_argument("--out", metavar="DIR",
                        help="directory for timeline.json / events.jsonl / "
                             "metrics.prom (required unless --list)")
    parser.add_argument("--footprint", action="store_true",
                        help="footprint-only allocations (no numpy backing)")
    parser.add_argument("--list", action="store_true",
                        help="list workloads and platform aliases, then exit")
    args = parser.parse_args(argv)

    if args.list:
        print("workloads: " + ", ".join(sorted(WORKLOADS)))
        print("mini-cuda: " + ", ".join(sorted(mini_cuda_workloads())))
        print("platforms: " + ", ".join(
            f"{alias}->{name}" for alias, name in sorted(PLATFORM_ALIASES.items())))
        return 0
    if args.out is None:
        parser.error("--out is required (unless --list)")
    preset = PLATFORM_ALIASES.get(args.platform, args.platform)
    if preset not in {"intel-pascal", "intel-volta", "power9-volta"}:
        print(f"unknown platform {args.platform!r}; known: "
              + ", ".join(sorted(PLATFORM_ALIASES)), file=sys.stderr)
        return 2
    run_traced(args.workload, preset, args.out,
               materialize=not args.footprint, backend=args.backend)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

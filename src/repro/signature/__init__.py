"""Access-pattern signatures: vectors, phases, and the signature index.

The layer that turns raw per-epoch heat (:mod:`repro.heatmap`) into
*comparable* fingerprints:

* :mod:`~repro.signature.vector` -- deterministic, normalized
  access-pattern vectors per allocation per epoch, run signatures, and
  cosine similarity between them;
* :mod:`~repro.signature.phases` -- online change-point segmentation of
  the epoch stream into phases;
* :mod:`~repro.signature.tracker` -- live phase tracking that emits
  ``phase_begin``/``phase_end`` events with cause links into the run's
  event stream;
* :mod:`~repro.signature.index` -- a versioned on-disk signature store
  with nearest-neighbor matching (the placement-service cache key);
* :mod:`~repro.signature.cli` -- the ``repro-sig compute|compare|match``
  command line.

The same vectors drive ``Tracer(sample="auto")``: full-rate tracing
inside detected phase transitions, strided sampling in steady state.
"""

from .index import DEFAULT_MATCH_THRESHOLD, SignatureIndex
from .phases import DEFAULT_THRESHOLD, Phase, PhaseDetector, detect_phases
from .tracker import PhaseTracker
from .vector import (
    FEATURE_NAMES,
    FEATURE_VERSION,
    N_FEATURES,
    AllocationSignature,
    RunSignature,
    cosine_similarity,
    epoch_vector,
    run_similarity,
    signature_from_npz,
    signature_from_store,
)

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_VERSION",
    "N_FEATURES",
    "AllocationSignature",
    "RunSignature",
    "cosine_similarity",
    "epoch_vector",
    "run_similarity",
    "signature_from_npz",
    "signature_from_store",
    "DEFAULT_THRESHOLD",
    "Phase",
    "PhaseDetector",
    "detect_phases",
    "PhaseTracker",
    "DEFAULT_MATCH_THRESHOLD",
    "SignatureIndex",
]

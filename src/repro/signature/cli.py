"""``repro-sig``: compute, compare and match access-pattern signatures.

Three subcommands, all byte-deterministic::

    repro-sig compute --workload pathfinder --platform pcie --out /tmp/sig
    repro-sig compute --npz /tmp/report/heat.npz --out /tmp/sig2
    repro-sig compare /tmp/sig /tmp/sig2
    repro-sig match /tmp/sig --index /tmp/sigdb --add pf-run-1

``compute`` replays a workload with heat recording (or rebuilds from a
``heat.npz`` artifact -- including one merged from stream shards) and
writes ``signature.json``: per-allocation access-pattern vectors plus
the detected phases.  ``compare`` scores two signatures; ``match`` does
nearest-neighbor lookup against an on-disk :class:`SignatureIndex` --
the cache key the auto-placement service replays plans from.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .index import DEFAULT_MATCH_THRESHOLD, SignatureIndex
from .phases import DEFAULT_THRESHOLD
from .vector import RunSignature, run_similarity, signature_from_npz

__all__ = ["main", "compute_signature"]


def compute_signature(workload: str, platform: str, *, buckets: int = 64,
                      sample: int | str | None = None,
                      phase_threshold: float = DEFAULT_THRESHOLD
                      ) -> RunSignature:
    """Replay ``workload`` with heat recording and sign the run."""
    from ..analysis import diagnose
    from ..heatmap.cli import REPORT_RUNNERS
    from ..heatmap.store import HeatStore
    from ..telemetry.cli import PLATFORM_ALIASES, WORKLOADS
    from ..workloads.base import make_session
    from .vector import signature_from_store

    preset = PLATFORM_ALIASES.get(platform, platform)
    runner = REPORT_RUNNERS.get(workload, WORKLOADS[workload])
    session = make_session(preset, trace=True, materialize=True,
                           sample=sample)
    heat = HeatStore(nbuckets=buckets, attribute=False)
    session.tracer.heat = heat
    runner(session)
    diagnose(session.tracer, include_unnamed=True)
    heat.flush_current()
    return signature_from_store(heat, workload=workload, platform=preset,
                                phase_threshold=phase_threshold)


def _load_signature(path: str | Path) -> RunSignature:
    """Load a signature from a file or a directory holding one."""
    p = Path(path)
    if p.is_dir():
        p = p / "signature.json"
    return RunSignature.load(p)


def _render_signature(sig: RunSignature) -> str:
    lines = [f"signature: {sig.workload or '<unnamed>'}"
             + (f" on {sig.platform}" if sig.platform else ""),
             f"  feature version {sig.feature_version}, "
             f"{len(sig.allocs)} allocation(s), "
             f"{len(sig.epoch_vectors)} epoch(s), "
             f"{sig.total} word-accesses"]
    lines.append(f"  phases: {len(sig.phases)}")
    for p in sig.phases:
        span = (f"epoch {p['start_epoch']}" if p["epochs"] == 1 else
                f"epochs {p['start_epoch']}-{p['end_epoch']}")
        extra = f", dist {p['distance']}" if p["distance"] else ""
        lines.append(f"    phase {p['phase']}: {span} "
                     f"({p['epochs']} epoch(s)), total {p['total']}{extra}")
    lines.append("  allocations:")
    for key, a in sorted(sig.allocs.items()):
        lines.append(f"    {key}: {a.total} word-accesses over "
                     f"{len(a.epochs)} epoch(s), {a.nwords} words")
    return "\n".join(lines)


def _render_similarity(sim: dict) -> str:
    lines = [f"similarity {sim['similarity']}: "
             f"{sim['a']} vs {sim['b']} "
             f"(phases {sim['phases_a']} vs {sim['phases_b']})"]
    for row in sim["by_alloc"]:
        mark = "" if row["in_a"] and row["in_b"] else \
            "  [only in a]" if row["in_a"] else "  [only in b]"
        lines.append(f"  {row['alloc']}: {row['similarity']}"
                     f" (weight {row['weight']}){mark}")
    return "\n".join(lines)


def _cmd_compute(args: argparse.Namespace) -> int:
    if args.npz:
        sig = signature_from_npz(args.npz, workload=args.workload or "",
                                 platform=args.platform or "",
                                 phase_threshold=args.phase_threshold)
    else:
        if not args.workload:
            print("compute needs --workload or --npz", file=sys.stderr)
            return 2
        sample: int | str | None = args.sample
        if sample and sample != "auto":
            sample = int(sample)
        sig = compute_signature(args.workload, args.platform or "pcie",
                                buckets=args.buckets, sample=sample,
                                phase_threshold=args.phase_threshold)
    out = Path(args.out)
    path = sig.save(out / "signature.json" if not out.suffix else out)
    if args.json:
        print(sig.to_json(), end="")
    else:
        print(_render_signature(sig))
        print(f"  written: {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    a = _load_signature(args.a)
    b = _load_signature(args.b)
    sim = run_similarity(a, b)
    if args.json:
        print(json.dumps(sim, indent=1, sort_keys=True))
    else:
        print(_render_similarity(sim))
    if args.fail_below is not None and sim["similarity"] < args.fail_below:
        print(f"similarity {sim['similarity']} below "
              f"{args.fail_below}", file=sys.stderr)
        return 3
    if args.fail_above is not None and sim["similarity"] > args.fail_above:
        print(f"similarity {sim['similarity']} above "
              f"{args.fail_above}", file=sys.stderr)
        return 3
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    sig = _load_signature(args.query)
    index = SignatureIndex(args.index)
    report = index.match(sig, threshold=args.threshold, k=args.k)
    if args.add:
        index.add(args.add, sig)
        report["added"] = args.add
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(f"query {report['query']}: {report['entries']} indexed "
              f"signature(s), threshold {report['threshold']}")
        for n in report["neighbors"]:
            flag = "MATCH" if n["match"] else "     "
            print(f"  {flag} {n['similarity']:8.6f}  {n['name']}"
                  f" ({n['workload']})")
        if report["best"]:
            print(f"best: {report['best']['name']} "
                  f"({report['best']['similarity']})")
        else:
            print("best: no match above threshold")
        if args.add:
            print(f"added: {args.add}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-sig`` / ``python -m repro.signature``."""
    parser = argparse.ArgumentParser(
        prog="repro-sig",
        description="Access-pattern signatures: compute fingerprints, "
                    "compare runs, match against a signature index.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("compute", help="sign a workload run (or an NPZ "
                                       "heat artifact)")
    p.add_argument("--workload", help="workload to replay")
    p.add_argument("--platform", default="pcie",
                   help="platform preset or alias (default: pcie)")
    p.add_argument("--npz", metavar="FILE",
                   help="rebuild the signature from a heat.npz artifact "
                        "instead of replaying (works on merged shard "
                        "bundles too)")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output directory (or .json path) for "
                        "signature.json")
    p.add_argument("--buckets", type=int, default=64,
                   help="word buckets per allocation (default: 64)")
    p.add_argument("--sample", default=None, metavar="N|auto",
                   help="shadow sampling: 1-in-N words, or 'auto' for "
                        "signature-guided adaptive sampling")
    p.add_argument("--phase-threshold", type=float,
                   default=DEFAULT_THRESHOLD,
                   help=f"phase change-point cosine distance "
                        f"(default: {DEFAULT_THRESHOLD})")
    p.add_argument("--json", action="store_true",
                   help="print the signature document instead of the "
                        "summary")
    p.set_defaults(func=_cmd_compute)

    p = sub.add_parser("compare", help="similarity between two signatures")
    p.add_argument("a", help="signature.json (or directory holding one)")
    p.add_argument("b", help="signature.json (or directory holding one)")
    p.add_argument("--json", action="store_true", help="JSON report")
    p.add_argument("--fail-below", type=float, default=None, metavar="T",
                   help="exit 3 when similarity < T (CI guard)")
    p.add_argument("--fail-above", type=float, default=None, metavar="T",
                   help="exit 3 when similarity > T (distinctness guard)")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("match", help="nearest neighbors in a signature "
                                     "index")
    p.add_argument("query", help="signature.json (or directory holding one)")
    p.add_argument("--index", required=True, metavar="DIR",
                   help="signature index directory (created on --add)")
    p.add_argument("--threshold", type=float,
                   default=DEFAULT_MATCH_THRESHOLD,
                   help=f"match threshold "
                        f"(default: {DEFAULT_MATCH_THRESHOLD})")
    p.add_argument("--k", type=int, default=5,
                   help="neighbors to report (default: 5)")
    p.add_argument("--add", metavar="NAME",
                   help="also store the query under NAME")
    p.add_argument("--json", action="store_true", help="JSON report")
    p.set_defaults(func=_cmd_match)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Live phase tracking: phase events in the run's causal event stream.

:class:`PhaseTracker` wires the online :class:`~.phases.PhaseDetector`
into a traced session: it listens to every frozen epoch snapshot
(:attr:`HeatStore.epoch_listeners`, which fires *before* a streaming
store releases the snapshot to disk), folds them into one run-level
vector per epoch, and -- whenever the detector declares a change-point --
records ``phase_begin`` / ``phase_end`` :class:`~repro.memsim.events.Event`
markers with cause links:

* a ``phase_begin``'s parent is the ``phase_end`` it follows (so Perfetto
  flow arrows chain phases);
* a ``phase_end``'s parent is its own ``phase_begin`` (begin/end pair).

Because the markers are ordinary events they ride every existing rail
for free: telemetry JSONL/Perfetto, stream segments, merge, and the
``repro-why`` blame rollups (which group by the markers' positions in
the id-ordered stream).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..memsim import Processor
from ..memsim.events import CauseLink, Event, EventKind, EventLog
from .phases import DEFAULT_THRESHOLD, Phase, PhaseDetector
from .vector import combine_vectors, epoch_vector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..heatmap.store import AllocationHeat, EpochHeat, HeatStore
    from ..runtime.tracer import Tracer

__all__ = ["PhaseTracker"]


class PhaseTracker:
    """Detect phases live and mark them in the event log.

    :param log: event log to record ``phase_begin``/``phase_end`` markers
        into (``None`` tracks phases without emitting events).
    :param threshold: cosine-distance change-point threshold.
    :param clock: simulated-time source for the markers (defaults to 0.0
        so untimed pipelines stay deterministic).
    """

    def __init__(self, *, log: EventLog | None = None,
                 threshold: float = DEFAULT_THRESHOLD,
                 clock: Callable[[], float] | None = None) -> None:
        self.detector = PhaseDetector(threshold)
        self.log = log
        self.clock = clock or (lambda: 0.0)
        #: Change-points seen so far (phase transitions, not counting
        #: the initial phase 0 begin).
        self.changes = 0
        #: Epoch of the most recent detector update.
        self.last_epoch = -1
        self._pending: list[tuple[np.ndarray, int]] = []
        self._begin_id = -1
        self._last_end_id = -1
        self._tracer: "Tracer | None" = None
        self._heat: "HeatStore | None" = None
        self._finished = False

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, tracer: "Tracer",
               heat: "HeatStore | None" = None) -> "PhaseTracker":
        """Subscribe to ``tracer``'s epoch stream (and its heat store)."""
        heat = heat if heat is not None else tracer.heat
        if heat is None:
            raise ValueError("phase tracking needs a heat store")
        heat.epoch_listeners.append(self._on_freeze)
        tracer.epoch_hooks.append(self._on_epoch)
        self._tracer = tracer
        self._heat = heat
        return self

    def detach(self) -> None:
        """Unsubscribe (no-op when never attached)."""
        if self._heat is not None and \
                self._on_freeze in self._heat.epoch_listeners:
            self._heat.epoch_listeners.remove(self._on_freeze)
        if self._tracer is not None and \
                self._on_epoch in self._tracer.epoch_hooks:
            self._tracer.epoch_hooks.remove(self._on_epoch)

    # ------------------------------------------------------------------ #
    # epoch stream

    def _on_freeze(self, heat: "AllocationHeat", snap: "EpochHeat") -> None:
        self._pending.append((epoch_vector(snap.counts), snap.total))

    def _on_epoch(self, closed: int) -> None:
        vec, weight = combine_vectors(self._pending)
        self._pending.clear()
        if weight <= 0:
            return
        first = not self.detector.started
        dist, changed = self.detector.update(closed, vec, weight)
        self.last_epoch = closed
        if first:
            self._emit_begin(0, closed, 0.0)
        elif changed:
            self.changes += 1
            self._emit_end(self.detector.phases[-1])
            self._emit_begin(len(self.detector.phases), closed, dist)

    def finish(self) -> list[Phase]:
        """Close the open phase, emit its ``phase_end``, return all phases.

        Idempotent; call before the event sink (stream spiller, telemetry
        writer) drains so the final marker lands in the artifacts.
        """
        if self._finished:
            return self.detector.phases
        self._finished = True
        phases = self.detector.finish()
        if phases and self._begin_id >= 0:
            self._emit_end(phases[-1])
        return phases

    # ------------------------------------------------------------------ #
    # queries

    @property
    def current_phase(self) -> int:
        """Index of the phase currently open (0 before any heat)."""
        return self.detector.current_phase

    def rollup(self) -> dict:
        """Compact live-state dict for stream manifests / ``repro-top``."""
        return {"current": self.current_phase,
                "epoch": self.last_epoch,
                "changes": self.changes}

    # ------------------------------------------------------------------ #
    # event emission

    def _emit_begin(self, phase: int, epoch: int, dist: float) -> None:
        if self.log is None:
            return
        event = self.log.record(Event(
            kind=EventKind.PHASE, time=self.clock(), device=Processor.CPU,
            detail=(f"phase_begin phase={phase} epoch={epoch} "
                    f"dist={round(float(dist), 6)}"),
            cause=CauseLink(api="phase", parent=self._last_end_id)))
        self._begin_id = event.id

    def _emit_end(self, closed: Phase) -> None:
        if self.log is None:
            return
        event = self.log.record(Event(
            kind=EventKind.PHASE, time=self.clock(), device=Processor.CPU,
            detail=(f"phase_end phase={closed.index} "
                    f"epochs={closed.epochs} total={closed.total}"),
            cause=CauseLink(api="phase", parent=self._begin_id)))
        self._last_end_id = event.id
        self._begin_id = -1

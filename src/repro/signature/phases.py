"""Phase detection: online change-point segmentation of the epoch stream.

A *phase* is a maximal run of epochs whose access-pattern vectors stay
close to the phase centroid.  :class:`PhaseDetector` consumes
``(epoch, vector, total)`` triples one at a time -- the same vectors
:func:`repro.signature.vector.epoch_vector` produces -- and declares a
change-point whenever the cosine distance between the incoming epoch and
the running (total-weighted) centroid of the current phase exceeds the
threshold.  The detector is strictly online (one pass, O(features) per
epoch, no look-ahead), which is what lets the live tracker emit
``phase_begin`` events mid-run and the adaptive sampler react to
transitions as they happen.

Determinism: pure float arithmetic over deterministic inputs; the same
epoch stream always segments identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from .vector import cosine_similarity

__all__ = ["DEFAULT_THRESHOLD", "Phase", "PhaseDetector", "detect_phases"]

#: Cosine-distance above which an epoch opens a new phase.  Calibrated
#: on the Spatter families (gather-only epoch streams, 64-bucket heat):
#: family switches measure 0.09-0.17 (stride-1 -> indirection 0.16,
#: stride-1 -> mostly-stride-1 0.09-0.10) while seed-to-seed jitter
#: inside one indirection family stays near 0.002 -- 0.08 sits ~4x below
#: the weakest switch and ~40x above the jitter floor.
DEFAULT_THRESHOLD = 0.08

_ROUND = 6


@dataclass
class Phase:
    """One detected phase: a contiguous run of similar epochs."""

    index: int
    start_epoch: int
    end_epoch: int
    epochs: int
    total: int
    #: Cosine distance that opened this phase (0.0 for the first phase).
    distance: float
    centroid: np.ndarray = field(repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.index,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "epochs": self.epochs,
            "total": self.total,
            "distance": round(float(self.distance), _ROUND),
            "centroid": [round(float(v), _ROUND) for v in self.centroid],
        }


class PhaseDetector:
    """Online change-point detector over access-pattern vectors.

    Feed closed epochs in order via :meth:`update`; it returns the
    cosine distance to the current phase centroid and ``True`` when that
    distance crossed ``threshold`` (a new phase began *at* this epoch).
    Call :meth:`finish` to close the last phase and get the full list.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD) -> None:
        self.threshold = float(threshold)
        self.phases: list[Phase] = []
        self._acc: np.ndarray | None = None   # weighted centroid accumulator
        self._weight = 0
        self._start = 0
        self._end = 0
        self._count = 0
        self._open_dist = 0.0

    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        """Whether any non-empty epoch has been consumed yet."""
        return bool(self.phases) or self._count > 0

    @property
    def current_phase(self) -> int:
        """Index of the phase the detector is currently inside."""
        return len(self.phases) if self._count else max(0, len(self.phases))

    @property
    def in_transition(self) -> bool:
        """Whether the most recent :meth:`update` opened a new phase."""
        return self._count == 1 and bool(self.phases)

    def update(self, epoch: int, vector: np.ndarray,
               total: int) -> tuple[float, bool]:
        """Consume one closed epoch; ``(distance, new_phase_started)``.

        Zero-weight epochs (nothing recorded) are ignored: silence is
        not a pattern change.
        """
        total = int(total)
        if total <= 0:
            return 0.0, False
        vector = np.asarray(vector, np.float64)
        if self._count == 0:
            self._open(epoch, vector, total, 0.0)
            return 0.0, False
        centroid = self._acc / self._weight
        dist = 1.0 - cosine_similarity(centroid, vector)
        if dist > self.threshold:
            self._close()
            self._open(epoch, vector, total, dist)
            return dist, True
        self._acc += vector * total
        self._weight += total
        self._end = epoch
        self._count += 1
        return dist, False

    def finish(self) -> list[Phase]:
        """Close the open phase and return every detected phase."""
        if self._count:
            self._close()
        return self.phases

    # ------------------------------------------------------------------ #

    def _open(self, epoch: int, vector: np.ndarray, total: int,
              dist: float) -> None:
        self._acc = vector * total
        self._weight = total
        self._start = self._end = epoch
        self._count = 1
        self._open_dist = dist

    def _close(self) -> None:
        self.phases.append(Phase(
            index=len(self.phases),
            start_epoch=self._start,
            end_epoch=self._end,
            epochs=self._count,
            total=self._weight,
            distance=self._open_dist,
            centroid=self._acc / self._weight,
        ))
        self._acc = None
        self._weight = 0
        self._count = 0


def detect_phases(epoch_vectors: Iterable[tuple[int, np.ndarray, int]],
                  threshold: float = DEFAULT_THRESHOLD) -> list[Phase]:
    """Segment a full ``(epoch, vector, total)`` stream into phases."""
    det = PhaseDetector(threshold)
    for epoch, vector, total in epoch_vectors:
        det.update(epoch, vector, total)
    return det.finish()

"""The signature index: a versioned on-disk store of run signatures.

This is the cache key the ROADMAP's auto-placement service looks up:
``SignatureIndex.match`` finds the nearest stored signatures to a fresh
run, and anything above the similarity threshold is "a pattern we have
seen before" -- its cached placement plan can be replayed instead of
re-simulating.

Layout (all writes atomic, all JSON canonical, fully deterministic)::

    <root>/
      index.json          # version header + entry table
      sigs/<name>.json    # one RunSignature document per entry
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .vector import FEATURE_VERSION, RunSignature, run_similarity

__all__ = ["INDEX_VERSION", "DEFAULT_MATCH_THRESHOLD", "SignatureIndex"]

INDEX_VERSION = 1

#: Similarity at/above which two runs count as "the same pattern".
#: Spatter calibration: re-runs of one family (even resharded) land
#: >0.99; different families land well below 0.9.
DEFAULT_MATCH_THRESHOLD = 0.9

_SAFE = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."


def _slug(name: str) -> str:
    out = "".join(c if c in _SAFE else "_" for c in name)
    return out or "_"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class SignatureIndex:
    """Named run signatures with nearest-neighbor matching."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._entries: dict[str, dict[str, Any]] = {}
        index = self.root / "index.json"
        if index.exists():
            doc = json.loads(index.read_text(encoding="utf-8"))
            if doc.get("type") != "signature_index":
                raise ValueError(f"{index} is not a signature index")
            if int(doc.get("version", -1)) != INDEX_VERSION:
                raise ValueError(
                    f"index version {doc.get('version')} != supported "
                    f"{INDEX_VERSION}")
            if int(doc.get("feature_version", -1)) != FEATURE_VERSION:
                raise ValueError(
                    f"index feature_version {doc.get('feature_version')} != "
                    f"supported {FEATURE_VERSION}; recompute signatures")
            self._entries = dict(doc.get("entries", {}))

    # ------------------------------------------------------------------ #
    # persistence

    def _flush(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "type": "signature_index",
            "version": INDEX_VERSION,
            "feature_version": FEATURE_VERSION,
            "entries": {k: self._entries[k] for k in sorted(self._entries)},
        }
        _atomic_write(self.root / "index.json",
                      json.dumps(doc, indent=1, sort_keys=True) + "\n")

    def add(self, name: str, sig: RunSignature) -> dict[str, Any]:
        """Store ``sig`` under ``name`` (replacing any previous entry)."""
        if sig.feature_version != FEATURE_VERSION:
            raise ValueError("signature feature_version mismatch")
        rel = f"sigs/{_slug(name)}.json"
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, sig.to_json())
        entry = {
            "file": rel,
            "workload": sig.workload,
            "platform": sig.platform,
            "total": sig.total,
            "allocs": len(sig.allocs),
            "phases": len(sig.phases),
        }
        self._entries[name] = entry
        self._flush()
        return entry

    def get(self, name: str) -> RunSignature:
        """Load the stored signature named ``name``."""
        entry = self._entries[name]
        return RunSignature.load(self.root / entry["file"])

    def names(self) -> list[str]:
        """All entry names, sorted."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------ #
    # matching

    def match(self, sig: RunSignature, *,
              threshold: float = DEFAULT_MATCH_THRESHOLD,
              k: int = 5) -> dict[str, Any]:
        """Nearest stored signatures to ``sig``.

        Returns a deterministic report: the top-``k`` neighbors sorted by
        descending similarity (name-tiebroken), each flagged ``match``
        when at/above ``threshold``, plus the best hit (or ``None``).
        """
        neighbors: list[dict[str, Any]] = []
        for name in self.names():
            sim = run_similarity(sig, self.get(name))
            neighbors.append({
                "name": name,
                "workload": self._entries[name]["workload"],
                "similarity": sim["similarity"],
                "match": sim["similarity"] >= threshold,
            })
        neighbors.sort(key=lambda n: (-n["similarity"], n["name"]))
        neighbors = neighbors[:max(0, k)]
        best = neighbors[0] if neighbors and neighbors[0]["match"] else None
        return {
            "type": "signature_match",
            "feature_version": FEATURE_VERSION,
            "query": sig.workload or "<query>",
            "threshold": threshold,
            "entries": len(self._entries),
            "neighbors": neighbors,
            "best": best,
        }

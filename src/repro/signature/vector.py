"""Access-pattern vectors: deterministic fingerprints of epoch heat.

The signature layer turns :class:`~repro.heatmap.store.AllocationHeat`
matrices into fixed-length, normalized feature vectors that can be
*compared* -- across epochs (phase detection), across allocations, and
across whole runs (the signature index the auto-placement service keys
its cache on).  Everything here is a pure function of the integer heat
counts, so a K-shard merged run (whose heat sums element-wise to the
unsharded run's) produces byte-identical signatures.

A vector has :data:`N_FEATURES` components, all in ``[0, 1]``:

* **channel mix** (4): fraction of word-accesses per channel
  (CPU read / CPU write / GPU read / GPU write);
* **shape scalars** (7): read fraction, GPU fraction, ping-pong balance
  (``min(cpu, gpu) / max(cpu, gpu)``), bucket coverage, peak-bucket
  share, heat center of mass, heat spread;
* **entropy** (1): Shannon entropy of the combined bucket distribution,
  normalized by ``log2(nbuckets)``;
* **per-channel distributions** (4 x :data:`N_COARSE`): each channel's
  bucket vector folded to :data:`N_COARSE` coarse buckets and normalized
  to sum 1, so allocations of different sizes/bucketings compare.

Top-site mix is carried on the :class:`AllocationSignature` as metadata
(labels + shares) rather than inside the distance vector, so signatures
rebuilt from ``heat.npz`` artifacts (which carry counts, not sites)
compare identically to signatures built from live stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..heatmap.store import CHANNELS, AllocationHeat, HeatStore

__all__ = [
    "FEATURE_VERSION",
    "N_COARSE",
    "N_FEATURES",
    "FEATURE_NAMES",
    "epoch_vector",
    "combine_vectors",
    "cosine_similarity",
    "AllocationSignature",
    "RunSignature",
    "signature_from_store",
    "signature_from_npz",
    "run_similarity",
]

#: Bumped whenever the feature layout changes incompatibly; stored in
#: every serialized signature and checked by the index before matching.
FEATURE_VERSION = 1

#: Coarse buckets per channel distribution (size-independent resolution).
N_COARSE = 16

#: Decimal places kept when serializing vectors (byte-determinism).
_ROUND = 6

_SCALARS = ("read_frac", "gpu_frac", "ping_pong", "coverage",
            "peak_frac", "center", "spread", "entropy")

#: Names of every vector component, in order.
FEATURE_NAMES: tuple[str, ...] = (
    tuple(f"mix_{c}" for c in CHANNELS)
    + _SCALARS
    + tuple(f"{c}_d{i}" for c in CHANNELS for i in range(N_COARSE))
)

N_FEATURES = len(FEATURE_NAMES)


def _coarsen(vec: np.ndarray, n: int = N_COARSE) -> np.ndarray:
    """Fold a bucket vector to ``n`` coarse buckets (sum-preserving)."""
    vec = np.asarray(vec, np.float64)
    if len(vec) == n:
        return vec.copy()
    idx = (np.arange(len(vec)) * n) // len(vec)
    return np.bincount(idx, weights=vec, minlength=n)


def epoch_vector(counts: np.ndarray) -> np.ndarray:
    """The access-pattern vector of one ``(4, nbuckets)`` heat matrix.

    Deterministic, scale-invariant (doubling every count changes
    nothing) and defined for empty matrices (the zero vector).
    """
    counts = np.asarray(counts, np.float64)
    total = counts.sum()
    out = np.zeros(N_FEATURES, np.float64)
    if total <= 0:
        return out
    nbuckets = counts.shape[1]
    per_channel = counts.sum(axis=1)
    combined = counts.sum(axis=0)

    # channel mix
    out[0:4] = per_channel / total
    # shape scalars
    cpu = per_channel[0] + per_channel[1]
    gpu = per_channel[2] + per_channel[3]
    reads = per_channel[0] + per_channel[2]
    out[4] = reads / total
    out[5] = gpu / total
    out[6] = min(cpu, gpu) / max(cpu, gpu) if max(cpu, gpu) > 0 else 0.0
    nonzero = int(np.count_nonzero(combined))
    out[7] = nonzero / nbuckets
    out[8] = combined.max() / total
    pos = (np.arange(nbuckets, dtype=np.float64) + 0.5) / nbuckets
    weights = combined / total
    center = float((pos * weights).sum())
    out[9] = center
    out[10] = float(np.sqrt(((pos - center) ** 2 * weights).sum()))
    if nbuckets > 1:
        p = weights[weights > 0]
        out[11] = float(-(p * np.log2(p)).sum()) / np.log2(nbuckets)
    # per-channel coarse distributions
    base = 4 + len(_SCALARS)
    for ch in range(len(CHANNELS)):
        dist = _coarsen(counts[ch])
        s = dist.sum()
        if s > 0:
            out[base + ch * N_COARSE: base + (ch + 1) * N_COARSE] = dist / s
    return out


def combine_vectors(vectors: Iterable[tuple[np.ndarray, int]]) -> \
        tuple[np.ndarray, int]:
    """Weight-average ``(vector, total)`` pairs into one run-level vector.

    Weighting by recorded word-accesses makes the run vector follow the
    allocations that actually dominate the epoch.  Returns
    ``(vector, total_weight)``; the zero vector when nothing recorded.
    """
    acc = np.zeros(N_FEATURES, np.float64)
    weight = 0
    for vec, total in vectors:
        acc += vec * float(total)
        weight += int(total)
    if weight > 0:
        acc /= float(weight)
    return acc, weight


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity in ``[0, 1]`` (features are non-negative)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(a, b) / (na * nb))


def _round_vec(vec: np.ndarray) -> list[float]:
    return [round(float(v), _ROUND) for v in vec]


@dataclass
class AllocationSignature:
    """Per-epoch access-pattern vectors of one allocation."""

    label: str
    size: int
    nwords: int
    nbuckets: int
    epochs: list[int]
    totals: list[int]
    vectors: np.ndarray          #: ``(n_epochs, N_FEATURES)``
    top_sites: list[tuple[str, int]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Word-accesses across all epochs."""
        return int(sum(self.totals))

    @property
    def mean(self) -> np.ndarray:
        """Total-weighted mean vector (the allocation's fingerprint)."""
        vec, _ = combine_vectors(
            (self.vectors[i], self.totals[i])
            for i in range(len(self.epochs)))
        return vec

    def to_dict(self) -> dict[str, Any]:
        # The serialized mean is recomputed from the *rounded* vectors so
        # that save -> load -> save round-trips byte-identically (a load
        # only ever sees the rounded form).
        vectors = [_round_vec(v) for v in self.vectors]
        mean, _ = combine_vectors(
            (np.asarray(v, np.float64), t)
            for v, t in zip(vectors, self.totals))
        return {
            "label": self.label,
            "size": self.size,
            "nwords": self.nwords,
            "nbuckets": self.nbuckets,
            "epochs": list(self.epochs),
            "totals": list(self.totals),
            "mean": _round_vec(mean),
            "vectors": vectors,
            "top_sites": [[s, int(n)] for s, n in self.top_sites],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AllocationSignature":
        vectors = np.asarray(d.get("vectors", []), np.float64)
        if vectors.size == 0:
            vectors = np.zeros((0, N_FEATURES), np.float64)
        return cls(
            label=d["label"], size=int(d["size"]), nwords=int(d["nwords"]),
            nbuckets=int(d["nbuckets"]),
            epochs=[int(e) for e in d.get("epochs", ())],
            totals=[int(t) for t in d.get("totals", ())],
            vectors=vectors,
            top_sites=[(s, int(n)) for s, n in d.get("top_sites", ())],
        )


@dataclass
class RunSignature:
    """The full signature of one run: per-alloc + per-epoch vectors + phases."""

    workload: str = ""
    platform: str = ""
    feature_version: int = FEATURE_VERSION
    allocs: dict[str, AllocationSignature] = field(default_factory=dict)
    #: Run-level per-epoch vectors: ``[(epoch, vector, total), ...]``.
    epoch_vectors: list[tuple[int, np.ndarray, int]] = field(
        default_factory=list)
    phases: list[dict[str, Any]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Word-accesses across every allocation."""
        return sum(a.total for a in self.allocs.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "run_signature",
            "feature_version": self.feature_version,
            "workload": self.workload,
            "platform": self.platform,
            "total": self.total,
            "allocs": {k: a.to_dict() for k, a in sorted(self.allocs.items())},
            "epoch_vectors": [
                {"epoch": int(e), "total": int(t), "vector": _round_vec(v)}
                for e, v, t in self.epoch_vectors],
            "phases": list(self.phases),
        }

    def to_json(self) -> str:
        """Canonical byte-deterministic JSON form."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunSignature":
        if d.get("type") != "run_signature":
            raise ValueError("not a run_signature document")
        version = int(d.get("feature_version", -1))
        if version != FEATURE_VERSION:
            raise ValueError(
                f"signature feature_version {version} != supported "
                f"{FEATURE_VERSION}")
        sig = cls(workload=d.get("workload", ""),
                  platform=d.get("platform", ""),
                  feature_version=version)
        for key, rec in d.get("allocs", {}).items():
            sig.allocs[key] = AllocationSignature.from_dict(rec)
        for rec in d.get("epoch_vectors", ()):
            sig.epoch_vectors.append((
                int(rec["epoch"]),
                np.asarray(rec["vector"], np.float64),
                int(rec["total"])))
        sig.phases = [dict(p) for p in d.get("phases", ())]
        return sig

    @classmethod
    def load(cls, path: str | Path) -> "RunSignature":
        return cls.from_dict(json.loads(Path(path).read_text(
            encoding="utf-8")))


def _alloc_keys(allocs: list[AllocationHeat]) -> list[str]:
    """Stable keys: the label, ordinal-suffixed on (rare) collisions."""
    seen: dict[str, int] = {}
    keys = []
    for heat in allocs:
        n = seen.get(heat.label, 0)
        seen[heat.label] = n + 1
        keys.append(heat.label if n == 0 else f"{heat.label}#{n}")
    return keys


def signature_from_store(store: HeatStore, *, workload: str = "",
                         platform: str = "",
                         phase_threshold: float | None = None) -> RunSignature:
    """Compute the :class:`RunSignature` of a heat store's closed epochs.

    Deterministic: allocations are visited in :meth:`HeatStore.allocations`
    order (sorted), so any store holding the same counts -- live, merged
    from shards, or reloaded -- signs identically.
    """
    from .phases import detect_phases

    sig = RunSignature(workload=workload, platform=platform)
    allocs = store.allocations()
    per_epoch: dict[int, list[tuple[np.ndarray, int]]] = {}
    for key, heat in zip(_alloc_keys(allocs), allocs):
        epochs, totals, vectors = [], [], []
        site_totals: dict[str, int] = {}
        for snap in heat.epochs:
            vec = epoch_vector(snap.counts)
            epochs.append(int(snap.epoch))
            totals.append(int(snap.total))
            vectors.append(vec)
            per_epoch.setdefault(int(snap.epoch), []).append(
                (vec, int(snap.total)))
            for site, n in snap.top_sites(5):
                site_totals[site.label] = site_totals.get(site.label, 0) + n
        tops = sorted(site_totals.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        sig.allocs[key] = AllocationSignature(
            label=heat.label, size=heat.size, nwords=heat.nwords,
            nbuckets=heat.nbuckets, epochs=epochs, totals=totals,
            vectors=(np.stack(vectors) if vectors
                     else np.zeros((0, N_FEATURES), np.float64)),
            top_sites=[(s, n) for s, n in tops],
        )
    for epoch in sorted(per_epoch):
        vec, weight = combine_vectors(per_epoch[epoch])
        if weight > 0:
            sig.epoch_vectors.append((epoch, vec, weight))
    kwargs = {} if phase_threshold is None else {"threshold": phase_threshold}
    sig.phases = [p.to_dict() for p in detect_phases(sig.epoch_vectors,
                                                     **kwargs)]
    return sig


def signature_from_npz(path: str | Path, *, workload: str = "",
                       platform: str = "",
                       phase_threshold: float | None = None) -> RunSignature:
    """Rebuild a :class:`RunSignature` from a ``heat.npz`` artifact alone.

    Relies on the per-channel arrays and geometry index written by
    :meth:`~repro.heatmap.store.HeatStore.to_npz` (``a<i>_<channel>``,
    ``sizes``, ``serials``, ``bases``); site attribution is not stored in
    NPZ, so ``top_sites`` comes back empty -- by design that never
    affects vectors or similarity.
    """
    from ..heatmap.store import EpochHeat
    from .phases import detect_phases  # noqa: F401  (parity of defaults)

    with np.load(path, allow_pickle=False) as npz:
        labels = [str(x) for x in npz["labels"]]
        nwords = npz["nwords"].astype(np.int64)
        sizes = npz["sizes"].astype(np.int64) if "sizes" in npz \
            else nwords * 4
        store = HeatStore(attribute=False)
        store.epochs_closed = [int(e) for e in npz["epochs_closed"]]
        for i, label in enumerate(labels):
            epochs = npz[f"a{i}_epochs"].astype(np.int64)
            key = f"a{i}_{CHANNELS[0]}"
            if key in npz:
                counts = np.stack(
                    [npz[f"a{i}_{c}"] for c in CHANNELS], axis=1)
            else:  # pre-signature archives: the combined stack
                counts = npz[f"a{i}_counts"]
            nbuckets = counts.shape[2] if counts.ndim == 3 else 1
            heat = AllocationHeat.from_meta(
                label, base=int(npz["bases"][i]) if "bases" in npz else 0,
                serial=int(npz["serials"][i]) if "serials" in npz else i,
                size=int(sizes[i]), nbuckets=int(nbuckets))
            for j, epoch in enumerate(epochs):
                heat.epochs.append(EpochHeat(
                    epoch=int(epoch),
                    counts=np.asarray(counts[j], np.int64)))
            store.adopt(heat)
    return signature_from_store(store, workload=workload, platform=platform,
                                phase_threshold=phase_threshold)


def run_similarity(a: RunSignature, b: RunSignature) -> dict[str, Any]:
    """Similarity report between two run signatures.

    Allocations pair by key; the overall score is the total-weighted mean
    of per-allocation cosine similarities, with unpaired allocations
    scoring 0 (a run with an extra hot allocation is *not* the same
    pattern).  Deterministic and symmetric.
    """
    keys = sorted(set(a.allocs) | set(b.allocs))
    per_alloc: list[dict[str, Any]] = []
    score_sum = 0.0
    weight_sum = 0
    for key in keys:
        sa = a.allocs.get(key)
        sb = b.allocs.get(key)
        if sa is not None and sb is not None:
            sim = cosine_similarity(sa.mean, sb.mean)
            weight = sa.total + sb.total
        else:
            sim = 0.0
            weight = (sa or sb).total
        weight = max(1, int(weight))
        score_sum += sim * weight
        weight_sum += weight
        per_alloc.append({
            "alloc": key,
            "similarity": round(sim, _ROUND),
            "weight": weight,
            "in_a": sa is not None,
            "in_b": sb is not None,
        })
    overall = score_sum / weight_sum if weight_sum else 1.0
    return {
        "type": "signature_similarity",
        "feature_version": FEATURE_VERSION,
        "a": a.workload or "<run a>",
        "b": b.workload or "<run b>",
        "similarity": round(overall, _ROUND),
        "phases_a": len(a.phases),
        "phases_b": len(b.phases),
        "by_alloc": per_alloc,
    }

"""What do signatures and phase tracking cost on top of plain tracing?

Two measurements back the ``repro.signature`` acceptance bars:

* **Overhead** -- a traced run with a heat store attached (the
  ``repro-report`` configuration) versus the same run with a live
  :class:`~repro.signature.tracker.PhaseTracker` plus the end-of-run
  :func:`~repro.signature.vector.signature_from_store` computation.
  Phase tracking is one vector fold per epoch and the signature a single
  pass over frozen heat counts, so the bar is < 1.3x over traced.

* **Adaptive fidelity** -- ``Tracer(sample="auto")`` versus a fixed
  stride granted an equal-or-larger recorded-word budget, scored on a
  phased synthetic program (each regime repeats a deterministic access
  pattern in its own region).  Fidelity is per-word agreement between
  the per-phase union of recorded shadow states and an unsampled run's
  shadow -- the information diagnostics and signatures are built from.

Usage::

    python -m repro.signature.overhead --repeats 3
"""

from __future__ import annotations

import argparse
import io
import sys

import numpy as np

from ..heatmap.store import HeatStore
from ..memsim import AddressSpace, MemoryKind, Processor
from ..memsim.events import EventLog
from ..runtime import Tracer
from ..telemetry.overhead import OVERHEAD_WORKLOADS, _timed
from ..workloads.base import make_session
from .tracker import PhaseTracker
from .vector import signature_from_store

__all__ = [
    "measure_signature_overhead",
    "measure_adaptive_fidelity",
    "format_rows",
    "main",
]


def measure_signature_overhead(
    workloads: tuple[str, ...] = ("sw",),
    *,
    platform: str = "intel-pascal",
    repeats: int = 3,
) -> list[dict]:
    """Time each workload traced+heat vs traced+heat+phases+signature.

    Returns one row per workload with absolute times and the ratio
    ``signature_x`` against the traced run.
    """
    rows: list[dict] = []
    for name in workloads:
        runner = OVERHEAD_WORKLOADS[name]

        def run_config(signature: bool) -> None:
            session = make_session(platform, trace=True, materialize=False)
            heat = HeatStore(nbuckets=64, attribute=False)
            session.tracer.heat = heat
            tracker = None
            if signature:
                tracker = PhaseTracker(log=EventLog()).attach(
                    session.tracer, heat)
            runner(session)
            if signature:
                tracker.finish()
                heat.flush_current()
                signature_from_store(heat, workload=name, platform=platform)

        traced_s = _timed(lambda: run_config(False), repeats)
        signature_s = _timed(lambda: run_config(True), repeats)
        rows.append({
            "workload": name,
            "traced_s": traced_s,
            "signature_s": signature_s,
            "signature_x": (signature_s / traced_s if traced_s
                            else float("inf")),
        })
    return rows


# --------------------------------------------------------------------- #
# adaptive-fidelity measurement

_WORDS = 4096
_QUARTER = _WORDS // 4
_REGIMES = 4
_EPOCHS_PER_REGIME = 8


def _phased_program() -> list[list[tuple[Processor, bool, int, int]]]:
    """Each regime repeats one deterministic pattern in its own quarter."""
    program = []
    for r in range(_REGIMES):
        base = r * _QUARTER
        epoch = [(Processor.GPU, False, base, base + _QUARTER)]
        for i in range(16):
            lo = base + (i * 61) % (_QUARTER - 16)
            epoch.append((Processor.CPU, True, lo, lo + 16))
        program.extend([epoch] * _EPOCHS_PER_REGIME)
    return program


def _replay(tracer: Tracer) -> list[np.ndarray]:
    space = AddressSpace()
    alloc = space.allocate(_WORDS * 4, MemoryKind.MANAGED, label="m")
    tracer.trc_register(alloc)
    snapshots = []
    for epoch in _phased_program():
        for proc, is_write, lo, hi in epoch:
            tracer.on_access(proc, alloc, lo * 4, 4, hi - lo,
                             is_write=is_write, indices=None, is_rmw=False)
        tracer.flush_trace()
        snapshots.append(tracer.smt.lookup(alloc.base).shadow.copy())
        tracer.advance_epoch()
    return snapshots


def _phase_fidelity(snapshots: list[np.ndarray],
                    reference: list[np.ndarray]) -> float:
    scores = []
    for r in range(_REGIMES):
        lo = r * _EPOCHS_PER_REGIME
        chunk = snapshots[lo:lo + _EPOCHS_PER_REGIME]
        union = np.bitwise_or.reduce(np.stack(chunk), axis=0)
        scores.append(float(np.mean(union == reference[lo])))
    return sum(scores) / len(scores)


def measure_adaptive_fidelity(*, auto_stride: int = 8, auto_hot: int = 2,
                              fixed_stride: int = 2) -> dict:
    """Score ``sample="auto"`` against a fixed stride at >= equal budget."""
    reference = _replay(Tracer())

    auto_tracer = Tracer(sample="auto", auto_stride=auto_stride,
                         auto_hot=auto_hot)
    auto_tracer.heat = HeatStore(nbuckets=32, attribute=False)
    auto_snaps = _replay(auto_tracer)

    fixed_tracer = Tracer(sample=fixed_stride)
    fixed_snaps = _replay(fixed_tracer)

    auto_desc, fixed_desc = auto_tracer.describe(), fixed_tracer.describe()
    return {
        "auto_recorded": auto_desc["words_recorded"],
        "fixed_recorded": fixed_desc["words_recorded"],
        "words_seen": auto_desc["words_seen"],
        "phase_changes": auto_tracer.auto_changes,
        "auto_fidelity": _phase_fidelity(auto_snaps, reference),
        "fixed_fidelity": _phase_fidelity(fixed_snaps, reference),
    }


def format_rows(rows: list[dict]) -> str:
    """Render the overhead table as text."""
    out = io.StringIO()
    out.write(f"{'workload':14s}{'traced':>9s}{'signature':>11s}"
              f"{'ratio':>8s}\n")
    for r in rows:
        out.write(f"{r['workload']:14s}{r['traced_s']:8.3f}s"
                  f"{r['signature_s']:10.3f}s{r['signature_x']:7.2f}x\n")
    if rows:
        mean = sum(r["signature_x"] for r in rows) / len(rows)
        out.write(f"{'average signature overhead vs traced':40s}"
                  f"{mean:7.2f}x\n")
    return out.getvalue()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.signature.overhead``)."""
    parser = argparse.ArgumentParser(
        prog="repro-sig-overhead",
        description="Measure signature/phase overhead vs plain tracing.")
    parser.add_argument("--workloads", nargs="*", default=["sw"],
                        choices=sorted(OVERHEAD_WORKLOADS),
                        help="workloads to time")
    parser.add_argument("--platform", default="intel-pascal",
                        help="platform preset (default: intel-pascal)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per configuration")
    args = parser.parse_args(argv)
    rows = measure_signature_overhead(tuple(args.workloads),
                                      platform=args.platform,
                                      repeats=args.repeats)
    sys.stdout.write(format_rows(rows))
    fid = measure_adaptive_fidelity()
    sys.stdout.write(
        f"adaptive fidelity {fid['auto_fidelity']:.3f} vs fixed "
        f"{fid['fixed_fidelity']:.3f} at {fid['auto_recorded']} vs "
        f"{fid['fixed_recorded']} recorded words\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Tokenizer for the mini-CUDA C subset.

Handles C and C++ comments, string/char literals, integer and floating
literals, the CUDA ``<<<``/``>>>`` launch brackets, and preprocessor
lines: ``#pragma`` lines become :data:`~.tokens.TokenKind.PRAGMA` tokens
(the transform interprets ``#pragma xpl``), any other directive becomes a
:data:`~.tokens.TokenKind.DIRECTIVE` token that the unparser passes
through verbatim (``#include`` etc.).
"""

from __future__ import annotations

from .errors import LexError
from .tokens import KEYWORDS, MULTI_PUNCT, Token, TokenKind

__all__ = ["tokenize"]

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_SINGLE_PUNCT = frozenset("+-*/%=<>!&|^~?:;,.(){}[]#")


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(source)
    line, col = 1, 1

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    def at_line_start() -> bool:
        j = i - 1
        while j >= 0 and source[j] in " \t":
            j -= 1
        return j < 0 or source[j] == "\n"

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r\n":
            advance()
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance()
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # preprocessor
        if c == "#" and at_line_start():
            start_line, start_col = line, col
            j = i
            while j < n and source[j] != "\n":
                if source[j] == "\\" and j + 1 < n and source[j + 1] == "\n":
                    j += 2
                    continue
                j += 1
            text = source[i:j]
            kind = (TokenKind.PRAGMA if text.lstrip("# \t").startswith("pragma")
                    else TokenKind.DIRECTIVE)
            tokens.append(Token(kind, text.strip(), start_line, start_col))
            advance(j - i)
            continue
        # identifiers / keywords
        if c in _IDENT_START:
            start_line, start_col = line, col
            j = i
            while j < n and source[j] in _IDENT_CONT:
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j - i)
            continue
        # numbers
        if c in _DIGITS or (c == "." and i + 1 < n and source[i + 1] in _DIGITS):
            start_line, start_col = line, col
            j = i
            is_float = False
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j] in _DIGITS:
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j] in _DIGITS:
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j] in _DIGITS:
                        j += 1
            while j < n and source[j] in "uUlLfF":
                if source[j] in "fF":
                    is_float = True
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.FLOAT if is_float else TokenKind.INT,
                                text, start_line, start_col))
            advance(j - i)
            continue
        # string / char literals
        if c in "\"'":
            start_line, start_col = line, col
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError("unterminated literal", start_line, start_col)
            text = source[i:j + 1]
            kind = TokenKind.STRING if quote == '"' else TokenKind.CHAR
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j + 1 - i)
            continue
        # punctuation
        matched = False
        for p in MULTI_PUNCT:
            if source.startswith(p, i):
                tokens.append(Token(TokenKind.PUNCT, p, line, col))
                advance(len(p))
                matched = True
                break
        if matched:
            continue
        if c in _SINGLE_PUNCT:
            tokens.append(Token(TokenKind.PUNCT, c, line, col))
            advance()
            continue
        raise LexError(f"unexpected character {c!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens

"""The instrumentation pass (the paper's ROSE-plugin logic, §III-B).

Rewrites a parsed translation unit so that

* every heap-affecting l-value read becomes ``traceR(lv)``, every write
  ``traceW(lv) = ...``, every read-modify-write ``traceRW(lv)`` (with the
  elisions the paper lists: plain variables, stack arrays/structs,
  address-of and ``sizeof`` operands);
* calls to functions named in ``#pragma xpl replace`` pragmas are
  redirected to their tracing replacements; the special target
  ``kernel-launch`` rewrites ``k<<<g, b>>>(args)`` into
  ``trcLaunch(g, b, shmem, stream, k, args...)``;
* every ``#pragma xpl diagnostic fn(verbatim; p, q)`` becomes a call to
  ``fn`` whose pointer arguments are recursively expanded into
  ``XplAllocData(expr, "expr", sizeof(*expr))`` records, stopping on
  type repetition.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from . import ast_nodes as A
from .errors import TypeError_
from .lvalue import AccessMode, Scope, is_heap_lvalue
from .pragmas import XplDiagnostic, XplReplace, parse_xpl_pragma
from .typesys import Pointer, StructType

__all__ = ["InstrumentationResult", "instrument", "TRACE_FNS"]

#: Names of the three memory tracing functions (paper Table I).
TRACE_FNS = {
    AccessMode.READ: "traceR",
    AccessMode.WRITE: "traceW",
    AccessMode.RMW: "traceRW",
}


@dataclass
class InstrumentationResult:
    """The instrumented unit plus a summary of what was done."""

    unit: A.TranslationUnit
    replacements: dict[str, str] = field(default_factory=dict)
    wrapped: Counter = field(default_factory=Counter)
    diagnostics_inserted: int = 0


def instrument(unit: A.TranslationUnit) -> InstrumentationResult:
    """Instrument ``unit`` in place (returns it wrapped in a result)."""
    result = InstrumentationResult(unit=unit)
    _collect_replacements(unit, result)
    globals_scope = Scope()
    for item in unit.items:
        if isinstance(item, A.DeclStmt):
            for d in item.decls:
                globals_scope.declare(d.name, d.ctype)
    walker = _Walker(unit, result, globals_scope)
    for item in unit.items:
        if isinstance(item, A.FunctionDef) and item.body is not None:
            scope = globals_scope.child()
            for p in item.params:
                scope.declare(p.name, p.ctype)
            item.body = walker.stmt(item.body, scope)
    return result


def _collect_replacements(unit: A.TranslationUnit,
                          result: InstrumentationResult) -> None:
    pending: str | None = None
    for item in unit.items:
        if isinstance(item, A.Pragma):
            parsed = parse_xpl_pragma(item.text)
            if isinstance(parsed, XplReplace):
                pending = parsed.target
            continue
        if pending is not None:
            if isinstance(item, A.FunctionDef):
                result.replacements[pending] = item.name
                pending = None
            else:
                raise TypeError_(
                    f"#pragma xpl replace {pending} must be followed by a "
                    f"function declaration"
                )


class _Walker:
    """Statement/expression rewriter with scope tracking."""

    def __init__(self, unit: A.TranslationUnit,
                 result: InstrumentationResult, globals_scope: Scope) -> None:
        self.unit = unit
        self.result = result
        self.globals = globals_scope

    # ------------------------------------------------------------------ #
    # statements

    def stmt(self, s: A.Stmt, scope: Scope) -> A.Stmt:
        if isinstance(s, A.Block):
            inner = scope.child()
            s.stmts = [self.stmt(x, inner) for x in s.stmts]
            return s
        if isinstance(s, A.DeclStmt):
            for d in s.decls:
                if d.init is not None:
                    d.init = self.expr(d.init, AccessMode.READ, scope)
                scope.declare(d.name, d.ctype)
            return s
        if isinstance(s, A.ExprStmt):
            s.expr = self.expr(s.expr, AccessMode.READ, scope)
            return s
        if isinstance(s, A.If):
            s.cond = self.expr(s.cond, AccessMode.READ, scope)
            s.then = self.stmt(s.then, scope)
            if s.other is not None:
                s.other = self.stmt(s.other, scope)
            return s
        if isinstance(s, A.While):
            s.cond = self.expr(s.cond, AccessMode.READ, scope)
            s.body = self.stmt(s.body, scope)
            return s
        if isinstance(s, A.DoWhile):
            s.body = self.stmt(s.body, scope)
            s.cond = self.expr(s.cond, AccessMode.READ, scope)
            return s
        if isinstance(s, A.For):
            inner = scope.child()
            if s.init is not None:
                s.init = self.stmt(s.init, inner)
            if s.cond is not None:
                s.cond = self.expr(s.cond, AccessMode.READ, inner)
            if s.step is not None:
                s.step = self.expr(s.step, AccessMode.READ, inner)
            s.body = self.stmt(s.body, inner)
            return s
        if isinstance(s, A.Return):
            if s.value is not None:
                s.value = self.expr(s.value, AccessMode.READ, scope)
            return s
        if isinstance(s, A.Pragma):
            parsed = None
            try:
                parsed = parse_xpl_pragma(s.text)
            except Exception:
                return s
            if isinstance(parsed, XplDiagnostic):
                return self._expand_diagnostic(parsed, scope)
            return s
        return s

    # ------------------------------------------------------------------ #
    # expressions

    def expr(self, e: A.Expr, mode: AccessMode, scope: Scope) -> A.Expr:
        R = AccessMode.READ
        if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit, A.StringLit,
                          A.BoolLit, A.NullLit, A.Ident, A.Raw,
                          A.SizeofType)):
            return e  # never wrapped; sizeof types carry no accesses
        if isinstance(e, A.SizeofExpr):
            return e  # paper: sizeof operand is elided entirely
        if isinstance(e, A.Unary):
            if e.op == "&":
                e.operand = self.expr(e.operand, AccessMode.NONE, scope)
                return e
            if e.op in ("++", "--"):
                e.operand = self.expr(e.operand, AccessMode.RMW, scope)
                return e
            if e.op == "*":
                e.operand = self.expr(e.operand, R, scope)
                return self._wrap(e, mode, scope)
            e.operand = self.expr(e.operand, R, scope)
            return e
        if isinstance(e, A.Binary):
            e.left = self.expr(e.left, R, scope)
            e.right = self.expr(e.right, R, scope)
            return e
        if isinstance(e, A.Assign):
            e.value = self.expr(e.value, R, scope)
            target_mode = AccessMode.WRITE if e.op == "=" else AccessMode.RMW
            e.target = self.expr(e.target, target_mode, scope)
            return e
        if isinstance(e, A.Ternary):
            e.cond = self.expr(e.cond, R, scope)
            e.then = self.expr(e.then, mode, scope)
            e.other = self.expr(e.other, mode, scope)
            return e
        if isinstance(e, A.Call):
            if isinstance(e.callee, A.Ident):
                repl = self.result.replacements.get(e.callee.name)
                if repl is not None:
                    e.callee = A.Ident(repl)
            e.args = [self.expr(a, R, scope) for a in e.args]
            return e
        if isinstance(e, A.Member):
            e.base = self.expr(e.base, R if e.arrow else AccessMode.NONE, scope)
            return self._wrap(e, mode, scope)
        if isinstance(e, A.Index):
            e.base = self.expr(e.base, R, scope)
            e.index = self.expr(e.index, R, scope)
            return self._wrap(e, mode, scope)
        if isinstance(e, A.Cast):
            e.operand = self.expr(e.operand, R, scope)
            return e
        if isinstance(e, A.KernelLaunch):
            e.grid = self.expr(e.grid, R, scope)
            e.block = self.expr(e.block, R, scope)
            if e.shmem is not None:
                e.shmem = self.expr(e.shmem, R, scope)
            if e.stream is not None:
                e.stream = self.expr(e.stream, R, scope)
            e.args = [self.expr(a, R, scope) for a in e.args]
            repl = self.result.replacements.get("kernel-launch")
            if repl is not None:
                return A.Call(A.Ident(repl), [
                    e.grid, e.block,
                    e.shmem or A.IntLit("0"), e.stream or A.IntLit("0"),
                    e.kernel, *e.args,
                ])
            return e
        if isinstance(e, A.NewExpr):
            if e.count is not None:
                e.count = self.expr(e.count, R, scope)
            if e.init is not None:
                e.init = self.expr(e.init, R, scope)
            repl = self.result.replacements.get("new")
            if repl is not None:
                size: A.Expr = A.SizeofType(e.ctype)
                if e.count is not None:
                    size = A.Binary("*", e.count, size)
                return A.Cast(Pointer(e.ctype), A.Call(A.Ident(repl), [size]))
            return e
        return e

    def _wrap(self, e: A.Expr, mode: AccessMode, scope: Scope) -> A.Expr:
        if mode is AccessMode.NONE or not is_heap_lvalue(e, scope):
            return e
        fn = TRACE_FNS[mode]
        self.result.wrapped[fn] += 1
        return A.Call(A.Ident(fn), [e])

    # ------------------------------------------------------------------ #
    # diagnostic expansion

    def _expand_diagnostic(self, pragma: XplDiagnostic, scope: Scope) -> A.Stmt:
        args: list[A.Expr] = [A.Raw(v) for v in pragma.verbatim]
        for var in pragma.expanded:
            ctype = scope.lookup(var)
            if ctype is None:
                raise TypeError_(
                    f"diagnostic argument {var!r} is not a variable in scope")
            if not isinstance(ctype, Pointer):
                raise TypeError_(
                    f"diagnostic argument {var!r} must have pointer type, "
                    f"got {ctype.spell()}")
            args.extend(self._expand_pointer(A.Ident(var), var, ctype.target,
                                             seen=set()))
        self.result.diagnostics_inserted += 1
        return A.ExprStmt(A.Call(A.Ident(pragma.function), args))

    def _expand_pointer(self, expr: A.Expr, name: str, target,
                        seen: set[str]) -> list[A.Expr]:
        record = A.Call(A.Ident("XplAllocData"), [
            expr,
            A.StringLit(f"\"{name}\""),
            A.SizeofExpr(A.Unary("*", expr)),
        ])
        out = [record]
        if isinstance(target, StructType):
            if target.name in seen:
                return out  # type repetition: stop (linked-list guard)
            seen.add(target.name)
            for f in self.unit.types.pointer_members(target):
                member = A.Member(expr, f.name, arrow=True)
                out.extend(self._expand_pointer(
                    member, f"{name}->{f.name}", f.type.target, seen))
            seen.discard(target.name)
        return out

"""Unparser: AST back to compilable mini-CUDA source.

The ROSE pipeline's final step -- the instrumented tree is converted back
to source text, which golden tests compare and the interpreter executes.
"""

from __future__ import annotations

import io

from . import ast_nodes as A
from .typesys import Array, CType, Pointer, StructType

__all__ = ["unparse", "unparse_expr"]

_PREC = {
    ",": 0, "=": 1,
    "?:": 2, "||": 3, "&&": 4, "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10, "+": 11, "-": 11, "*": 12, "/": 12, "%": 12,
    "unary": 13, "postfix": 14, "primary": 15,
}


def _decl_str(ctype: CType, name: str) -> str:
    """Spell a declaration of ``name`` with type ``ctype``."""
    if isinstance(ctype, Array):
        return f"{_decl_str(ctype.element, name)}[{ctype.length}]"
    if isinstance(ctype, Pointer):
        return _decl_str(ctype.target, f"*{name}")
    return f"{ctype.spell()} {name}".strip()


def unparse_expr(e: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where needed."""
    text, prec = _expr(e)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(e: A.Expr) -> tuple[str, int]:
    P = _PREC
    if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit, A.StringLit)):
        return e.text, P["primary"]
    if isinstance(e, A.BoolLit):
        return ("true" if e.value else "false"), P["primary"]
    if isinstance(e, A.NullLit):
        return e.spelling, P["primary"]
    if isinstance(e, A.Ident):
        return e.name, P["primary"]
    if isinstance(e, A.Raw):
        return e.text, P["primary"]
    if isinstance(e, A.Unary):
        if e.op == "delete":
            return f"delete {unparse_expr(e.operand, P['unary'])}", P["unary"]
        if e.prefix:
            inner = unparse_expr(e.operand, P["unary"])
            if e.op in ("-", "+", "&", "*") and inner.startswith(e.op):
                inner = f" {inner}"  # avoid fusing into --, ++, && or **
            return f"{e.op}{inner}", P["unary"]
        return f"{unparse_expr(e.operand, P['postfix'])}{e.op}", P["postfix"]
    if isinstance(e, A.Binary):
        prec = P[e.op] if e.op != "," else 0
        left = unparse_expr(e.left, prec)
        right = unparse_expr(e.right, prec + 1)
        sep = ", " if e.op == "," else f" {e.op} "
        return f"{left}{sep}{right}", prec
    if isinstance(e, A.Assign):
        target = unparse_expr(e.target, P["unary"])
        value = unparse_expr(e.value, P["="])
        return f"{target} {e.op} {value}", P["="]
    if isinstance(e, A.Ternary):
        return (f"{unparse_expr(e.cond, P['?:'] + 1)} ? "
                f"{unparse_expr(e.then)} : {unparse_expr(e.other)}", P["?:"])
    if isinstance(e, A.Call):
        callee = unparse_expr(e.callee, P["postfix"])
        args = ", ".join(unparse_expr(a, 1) for a in e.args)
        return f"{callee}({args})", P["postfix"]
    if isinstance(e, A.Member):
        op = "->" if e.arrow else "."
        return f"{unparse_expr(e.base, P['postfix'])}{op}{e.name}", P["postfix"]
    if isinstance(e, A.Index):
        return (f"{unparse_expr(e.base, P['postfix'])}"
                f"[{unparse_expr(e.index)}]", P["postfix"])
    if isinstance(e, A.Cast):
        return f"({e.ctype.spell()}){unparse_expr(e.operand, P['unary'])}", P["unary"]
    if isinstance(e, A.SizeofType):
        return f"sizeof({e.ctype.spell()})", P["primary"]
    if isinstance(e, A.SizeofExpr):
        return f"sizeof({unparse_expr(e.operand)})", P["primary"]
    if isinstance(e, A.KernelLaunch):
        cfg = [unparse_expr(e.grid), unparse_expr(e.block)]
        if e.shmem is not None:
            cfg.append(unparse_expr(e.shmem))
        if e.stream is not None:
            cfg.append(unparse_expr(e.stream))
        args = ", ".join(unparse_expr(a, 1) for a in e.args)
        kern = unparse_expr(e.kernel, _PREC["postfix"])
        return f"{kern}<<<{', '.join(cfg)}>>>({args})", P["postfix"]
    if isinstance(e, A.NewExpr):
        base = f"new {e.ctype.spell()}"
        if e.count is not None:
            return f"{base}[{unparse_expr(e.count)}]", P["unary"]
        if e.init is not None:
            return f"{base}({unparse_expr(e.init)})", P["unary"]
        return base, P["unary"]
    raise TypeError(f"cannot unparse {type(e).__name__}")


class _Writer:
    def __init__(self) -> None:
        self.out = io.StringIO()
        self.indent = 0

    def line(self, text: str = "") -> None:
        self.out.write("    " * self.indent + text + "\n" if text
                       else "\n")


def unparse(unit: A.TranslationUnit) -> str:
    """Render a whole translation unit."""
    w = _Writer()
    for item in unit.items:
        _item(w, item)
    return w.out.getvalue()


def _item(w: _Writer, item: A.Node) -> None:
    if isinstance(item, (A.Pragma, A.Directive)):
        w.line(item.text)
        return
    if isinstance(item, A.StructDef):
        w.line(f"struct {item.struct.name} {{")
        w.indent += 1
        for f in item.struct.fields:
            w.line(f"{_decl_str(f.type, f.name)};")
        w.indent -= 1
        w.line("};")
        return
    if isinstance(item, A.DeclStmt):
        _stmt(w, item)
        return
    if isinstance(item, A.FunctionDef):
        quals = " ".join(sorted(item.qualifiers))
        params = ", ".join(_decl_str(p.ctype, p.name) for p in item.params)
        if item.variadic:
            params = f"{params}, ..." if params else "..."
        head = f"{_decl_str(item.return_type, item.name)}({params})"
        if quals:
            head = f"{quals} {head}"
        if item.body is None:
            w.line(f"{head};")
        else:
            w.line(f"{head} {{")
            w.indent += 1
            for s in item.body.stmts:
                _stmt(w, s)
            w.indent -= 1
            w.line("}")
        w.line("")
        return
    raise TypeError(f"cannot unparse item {type(item).__name__}")


def _stmt(w: _Writer, s: A.Stmt) -> None:
    if isinstance(s, A.Block):
        w.line("{")
        w.indent += 1
        for x in s.stmts:
            _stmt(w, x)
        w.indent -= 1
        w.line("}")
        return
    if isinstance(s, A.DeclStmt):
        parts = []
        for d in s.decls:
            text = _decl_str(d.ctype, d.name)
            if d.init is not None:
                text += f" = {unparse_expr(d.init, 1)}"
            parts.append(text)
        # Multi-declarator lines are split for clarity.
        for p in parts:
            w.line(f"{p};")
        return
    if isinstance(s, A.ExprStmt):
        w.line(f"{unparse_expr(s.expr)};")
        return
    if isinstance(s, A.If):
        w.line(f"if ({unparse_expr(s.cond)})")
        _substmt(w, s.then)
        if s.other is not None:
            w.line("else")
            _substmt(w, s.other)
        return
    if isinstance(s, A.While):
        w.line(f"while ({unparse_expr(s.cond)})")
        _substmt(w, s.body)
        return
    if isinstance(s, A.DoWhile):
        w.line("do")
        _substmt(w, s.body)
        w.line(f"while ({unparse_expr(s.cond)});")
        return
    if isinstance(s, A.For):
        init = ""
        if isinstance(s.init, A.DeclStmt):
            d = s.init.decls[0]
            init = _decl_str(d.ctype, d.name)
            if d.init is not None:
                init += f" = {unparse_expr(d.init, 1)}"
            for extra in s.init.decls[1:]:
                init += f", {extra.name}"
                if extra.init is not None:
                    init += f" = {unparse_expr(extra.init, 1)}"
        elif isinstance(s.init, A.ExprStmt):
            init = unparse_expr(s.init.expr)
        cond = unparse_expr(s.cond) if s.cond is not None else ""
        step = unparse_expr(s.step) if s.step is not None else ""
        w.line(f"for ({init}; {cond}; {step})")
        _substmt(w, s.body)
        return
    if isinstance(s, A.Return):
        if s.value is None:
            w.line("return;")
        else:
            w.line(f"return {unparse_expr(s.value)};")
        return
    if isinstance(s, A.Break):
        w.line("break;")
        return
    if isinstance(s, A.Continue):
        w.line("continue;")
        return
    if isinstance(s, (A.Pragma, A.Directive)):
        w.line(s.text)
        return
    raise TypeError(f"cannot unparse statement {type(s).__name__}")


def _substmt(w: _Writer, s: A.Stmt) -> None:
    if isinstance(s, A.Block):
        _stmt(w, s)
    else:
        w.indent += 1
        _stmt(w, s)
        w.indent -= 1

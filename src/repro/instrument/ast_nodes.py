"""AST node definitions for the mini-CUDA C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .typesys import CType, StructType, TypeTable

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLit", "FloatLit", "CharLit", "StringLit", "BoolLit", "NullLit",
    "Ident", "Raw", "Unary", "Binary", "Assign", "Ternary", "Call", "Member",
    "Index", "Cast", "SizeofType", "SizeofExpr", "KernelLaunch", "NewExpr",
    "ExprStmt", "DeclStmt", "VarDecl", "If", "While", "DoWhile", "For",
    "Return", "Break", "Continue", "Block", "Pragma", "Directive",
    "FunctionDef", "Param", "StructDef", "TranslationUnit",
]


class Node:
    """Base AST node."""

    line: int = 0


class Expr(Node):
    """Base expression node."""


class Stmt(Node):
    """Base statement node."""


# --------------------------------------------------------------------- #
# expressions

@dataclass
class IntLit(Expr):
    text: str

    @property
    def value(self) -> int:
        t = self.text.rstrip("uUlL")
        return int(t, 0)


@dataclass
class FloatLit(Expr):
    text: str

    @property
    def value(self) -> float:
        return float(self.text.rstrip("fFlL"))


@dataclass
class CharLit(Expr):
    text: str  # includes quotes


@dataclass
class StringLit(Expr):
    text: str  # includes quotes


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NullLit(Expr):
    spelling: str = "NULL"


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Raw(Expr):
    """A verbatim argument carried through untouched (e.g. ``std::cout``
    from a diagnostic pragma)."""

    text: str


@dataclass
class Unary(Expr):
    op: str
    operand: Expr
    prefix: bool = True  # False for postfix ++/--


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    op: str  # '=', '+=', ...
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    callee: Expr
    args: list[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool  # True for '->'


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    ctype: CType
    operand: Expr


@dataclass
class SizeofType(Expr):
    ctype: CType


@dataclass
class SizeofExpr(Expr):
    operand: Expr


@dataclass
class KernelLaunch(Expr):
    kernel: Expr
    grid: Expr
    block: Expr
    shmem: Optional[Expr] = None
    stream: Optional[Expr] = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewExpr(Expr):
    ctype: CType
    count: Optional[Expr] = None   # new T[count]
    init: Optional[Expr] = None    # new T(init)


# --------------------------------------------------------------------- #
# statements

@dataclass
class VarDecl(Node):
    name: str
    ctype: CType
    init: Optional[Expr] = None
    qualifiers: frozenset[str] = frozenset()


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class DeclStmt(Stmt):
    decls: list[VarDecl]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # DeclStmt or ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Pragma(Stmt):
    text: str  # full '#pragma ...' line


@dataclass
class Directive(Stmt):
    text: str  # any other preprocessor line, passed through


# --------------------------------------------------------------------- #
# top level

@dataclass
class Param(Node):
    name: str
    ctype: CType


@dataclass
class FunctionDef(Node):
    name: str
    return_type: CType
    params: list[Param]
    body: Optional[Block]  # None for a prototype
    qualifiers: frozenset[str] = frozenset()
    variadic: bool = False

    @property
    def is_kernel(self) -> bool:
        return "__global__" in self.qualifiers


@dataclass
class StructDef(Node):
    struct: StructType


@dataclass
class TranslationUnit(Node):
    items: list[Node] = field(default_factory=list)
    types: TypeTable = field(default_factory=TypeTable)

    def functions(self) -> list[FunctionDef]:
        return [x for x in self.items if isinstance(x, FunctionDef)]

    def function(self, name: str) -> FunctionDef:
        for f in self.functions():
            if f.name == name and f.body is not None:
                return f
        raise KeyError(name)

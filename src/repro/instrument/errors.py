"""Front-end error types."""

from __future__ import annotations

__all__ = ["FrontendError", "LexError", "ParseError", "TypeError_"]


class FrontendError(Exception):
    """Base class for mini-CUDA front-end failures."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        where = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(FrontendError):
    """Tokenizer failure."""


class ParseError(FrontendError):
    """Parser failure."""


class TypeError_(FrontendError):
    """Type-model failure (unknown struct, bad field, ...)."""

"""``#pragma xpl`` parsing (paper Table I).

Two pragma forms drive the instrumentation:

* ``#pragma xpl replace <funcname>`` -- the next function *declaration*
  names the tracing replacement for ``funcname``; the special name
  ``kernel-launch`` replaces every ``<<<>>>`` launch;
* ``#pragma xpl diagnostic fn(verbatim...; p, q)`` -- insert a call to
  ``fn`` with the verbatim arguments followed by recursively expanded
  ``XplAllocData`` records for the listed pointer variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ParseError

__all__ = ["XplReplace", "XplDiagnostic", "parse_xpl_pragma"]


@dataclass(frozen=True)
class XplReplace:
    """``#pragma xpl replace <target>``."""

    target: str  # function name or 'kernel-launch'


@dataclass(frozen=True)
class XplDiagnostic:
    """``#pragma xpl diagnostic fn(verbatim; expanded)``."""

    function: str
    verbatim: tuple[str, ...] = ()
    expanded: tuple[str, ...] = ()


def parse_xpl_pragma(text: str) -> XplReplace | XplDiagnostic | None:
    """Parse a ``#pragma`` line; returns ``None`` for non-xpl pragmas."""
    body = text.lstrip("#").strip()
    if not body.startswith("pragma"):
        raise ParseError(f"not a pragma line: {text!r}")
    body = body[len("pragma"):].strip()
    if not body.startswith("xpl"):
        return None
    body = body[len("xpl"):].strip()
    if body.startswith("replace"):
        target = body[len("replace"):].strip()
        if not target or " " in target:
            raise ParseError(f"malformed xpl replace pragma: {text!r}")
        return XplReplace(target)
    if body.startswith("diagnostic"):
        rest = body[len("diagnostic"):].strip().rstrip("\\").strip()
        open_paren = rest.find("(")
        if open_paren < 0 or not rest.endswith(")"):
            raise ParseError(f"malformed xpl diagnostic pragma: {text!r}")
        fn = rest[:open_paren].strip()
        inner = rest[open_paren + 1:-1]
        if ";" in inner:
            verbatim_part, expanded_part = inner.split(";", 1)
        else:
            verbatim_part, expanded_part = inner, ""
        verbatim = tuple(a.strip() for a in verbatim_part.split(",") if a.strip())
        expanded = tuple(a.strip() for a in expanded_part.split(",") if a.strip())
        if not fn:
            raise ParseError(f"xpl diagnostic needs a function name: {text!r}")
        return XplDiagnostic(fn, verbatim, expanded)
    raise ParseError(f"unknown xpl pragma: {text!r}")

"""C type model: sizes, alignment, struct layout, pointer expansion.

The instrumenter needs types for two jobs the paper describes:

* deciding element sizes (``sizeof(*p)``) for ``XplAllocData`` records in
  diagnostic expansion, including recursing through struct pointer
  members with a type-repetition guard;
* giving the interpreter a concrete memory layout so ``p->field`` and
  ``a[i]`` resolve to simulated addresses.

The model follows LP64: char 1, short 2, int 4, long/size_t/pointers 8,
float 4, double 8; structs use natural alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import TypeError_

__all__ = [
    "CType", "Primitive", "Pointer", "Array", "StructType", "StructField",
    "TypeTable", "INT", "CHAR", "FLOAT", "DOUBLE", "LONG", "VOID", "SIZE_T",
]


class CType:
    """Base class of the C type model."""

    size: int
    align: int

    def __repr__(self) -> str:
        return self.spell()

    def spell(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class Primitive(CType):
    """A primitive type like ``int`` or ``double``."""

    name: str
    size: int
    is_float: bool = False
    is_signed: bool = True

    @property
    def align(self) -> int:
        return self.size

    def spell(self) -> str:
        return self.name


VOID = Primitive("void", 0)
CHAR = Primitive("char", 1)
SHORT = Primitive("short", 2)
INT = Primitive("int", 4)
UINT = Primitive("unsigned int", 4, is_signed=False)
LONG = Primitive("long", 8)
SIZE_T = Primitive("size_t", 8, is_signed=False)
FLOAT = Primitive("float", 4, is_float=True)
DOUBLE = Primitive("double", 8, is_float=True)
BOOL = Primitive("bool", 1)

_PRIMITIVES = {t.name: t for t in
               (VOID, CHAR, SHORT, INT, UINT, LONG, SIZE_T, FLOAT, DOUBLE, BOOL)}
_PRIMITIVES["cudaError_t"] = INT


@dataclass(frozen=True, repr=False)
class Pointer(CType):
    """``T*``."""

    target: CType

    size: int = 8
    align: int = 8

    def spell(self) -> str:
        return f"{self.target.spell()}*"


@dataclass(frozen=True, repr=False)
class Array(CType):
    """``T[n]``."""

    element: CType
    length: int

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    def spell(self) -> str:
        return f"{self.element.spell()}[{self.length}]"


@dataclass(frozen=True)
class StructField:
    """One struct member with its computed byte offset."""

    name: str
    type: CType
    offset: int


@dataclass(repr=False)
class StructType(CType):
    """``struct Name { ... }`` with natural-alignment layout."""

    name: str
    fields: list[StructField] = field(default_factory=list)
    size: int = 0
    align: int = 1
    complete: bool = False

    def lay_out(self, members: list[tuple[str, CType]]) -> None:
        """Assign offsets and compute size/alignment."""
        offset = 0
        align = 1
        out: list[StructField] = []
        for name, ctype in members:
            a = max(1, ctype.align)
            offset = -(-offset // a) * a
            out.append(StructField(name, ctype, offset))
            offset += ctype.size
            align = max(align, a)
        self.fields = out
        self.align = align
        self.size = -(-offset // align) * align if offset else 0
        self.complete = True

    def field_named(self, name: str) -> StructField:
        """Look up a member by name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise TypeError_(f"struct {self.name} has no member {name!r}")

    def spell(self) -> str:
        return f"struct {self.name}"


class TypeTable:
    """Named types of one translation unit."""

    def __init__(self) -> None:
        self._structs: dict[str, StructType] = {}
        self._typedefs: dict[str, CType] = {}

    def primitive(self, name: str) -> Primitive:
        """The primitive named ``name`` (raises on unknown)."""
        try:
            return _PRIMITIVES[name]
        except KeyError:
            raise TypeError_(f"unknown primitive type {name!r}") from None

    def struct(self, name: str, *, declare: bool = False) -> StructType:
        """Resolve (or forward-declare) ``struct name``."""
        if name not in self._structs:
            if not declare:
                raise TypeError_(f"unknown struct {name!r}")
            self._structs[name] = StructType(name)
        return self._structs[name]

    def add_typedef(self, name: str, ctype: CType) -> None:
        """Register ``typedef ctype name``."""
        self._typedefs[name] = ctype

    def typedef(self, name: str) -> CType | None:
        """Resolve a typedef name (``None`` if unknown)."""
        return self._typedefs.get(name)

    def pointer_members(self, ctype: CType) -> list[StructField]:
        """Pointer-typed members of a struct (for diagnostic expansion)."""
        if isinstance(ctype, StructType):
            return [f for f in ctype.fields if isinstance(f.type, Pointer)]
        return []


def expand_pointer(
    table: TypeTable, ctype: CType, expr: str,
) -> list[tuple[str, CType]]:
    """Recursively expand a pointer for ``#pragma xpl diagnostic``.

    Given ``expr`` of pointer type ``ctype``, returns ``(expression,
    pointee-type)`` pairs for the pointer itself and every pointer member
    reachable through it, stopping on type repetition (the paper's
    linked-list guard).  Expressions use the paper's spelling, e.g.
    ``(a)->first``.
    """
    if not isinstance(ctype, Pointer):
        raise TypeError_(f"diagnostic argument {expr!r} must have pointer type")
    records: list[tuple[str, CType]] = []
    seen: set[str] = set()

    def walk(e: str, target: CType) -> None:
        records.append((e, target))
        if isinstance(target, StructType):
            if target.name in seen:
                return
            seen.add(target.name)
            for f in table.pointer_members(target):
                walk(f"({e})->{f.name}", f.type.target)
            seen.discard(target.name)

    walk(expr, ctype.target)
    return records

"""Recursive-descent parser for the mini-CUDA C subset.

Supports what the paper's examples and benchmarks need: struct
definitions, global/local declarations, functions with CUDA qualifiers,
kernel launches (``f<<<grid, block>>>(args)``), ``new``/``delete``, the
full C expression grammar with precedence, and ``#pragma`` / other
preprocessor lines carried through as statements.
"""

from __future__ import annotations

from . import ast_nodes as A
from .errors import ParseError
from .tokens import CUDA_QUALIFIERS, TYPE_KEYWORDS, Token, TokenKind
from .typesys import Array, CType, Pointer, StructType, TypeTable

__all__ = ["Parser", "parse"]

#: Binary operator precedence (higher binds tighter).
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


def parse(source_or_tokens) -> A.TranslationUnit:
    """Parse source text (or a token list) into a translation unit."""
    if isinstance(source_or_tokens, str):
        from .lexer import tokenize
        tokens = tokenize(source_or_tokens)
    else:
        tokens = source_or_tokens
    return Parser(tokens).parse_unit()


class Parser:
    """One-pass recursive-descent parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.types = TypeTable()
        self._typedef_names: set[str] = set()

    # ------------------------------------------------------------------ #
    # token plumbing

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        if not self.cur.is_punct(text):
            raise ParseError(f"expected {text!r}, found {self.cur.text!r}",
                             self.cur.line, self.cur.col)
        return self.next()

    def accept_punct(self, text: str) -> bool:
        if self.cur.is_punct(text):
            self.next()
            return True
        return False

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {self.cur.text!r}",
                             self.cur.line, self.cur.col)
        return self.next()

    # ------------------------------------------------------------------ #
    # types

    def _starts_type(self, tok: Token | None = None) -> bool:
        tok = tok or self.cur
        if tok.is_keyword(*TYPE_KEYWORDS) or tok.is_keyword("struct", "const"):
            return True
        return (tok.kind is TokenKind.IDENT and tok.text in self._typedef_names)

    def parse_type(self) -> CType:
        """Parse a type specifier plus pointer declarators."""
        while self.cur.is_keyword("const", "static", "extern"):
            self.next()
        if self.cur.is_keyword("struct"):
            self.next()
            name = self.expect_ident().text
            base: CType = self.types.struct(name, declare=True)
        elif self.cur.kind is TokenKind.IDENT and self.cur.text in self._typedef_names:
            base = self.types.typedef(self.next().text)
        else:
            words = []
            while self.cur.is_keyword(*TYPE_KEYWORDS):
                words.append(self.next().text)
            if not words:
                raise ParseError(f"expected type, found {self.cur.text!r}",
                                 self.cur.line, self.cur.col)
            base = self._primitive_from(words)
        while True:
            while self.cur.is_keyword("const"):
                self.next()
            if self.accept_punct("*"):
                base = Pointer(base)
            else:
                break
        return base

    def _primitive_from(self, words: list[str]) -> CType:
        joined = " ".join(words)
        mapping = {
            "void": "void", "bool": "bool", "char": "char",
            "short": "short", "int": "int", "float": "float",
            "double": "double", "size_t": "size_t", "long": "long",
            "long long": "long", "long int": "long",
            "unsigned": "unsigned int", "unsigned int": "unsigned int",
            "unsigned char": "char", "unsigned long": "size_t",
            "unsigned long long": "size_t", "signed int": "int",
            "signed": "int", "cudaError_t": "cudaError_t",
            "unsigned short": "short", "signed char": "char",
            "long double": "double",
        }
        if joined not in mapping:
            raise ParseError(f"unsupported type {joined!r}",
                             self.cur.line, self.cur.col)
        return self.types.primitive(mapping[joined])

    # ------------------------------------------------------------------ #
    # top level

    def parse_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit(types=self.types)
        while self.cur.kind is not TokenKind.EOF:
            unit.items.append(self.parse_top_level())
        return unit

    def parse_top_level(self) -> A.Node:
        tok = self.cur
        if tok.kind is TokenKind.PRAGMA:
            self.next()
            return A.Pragma(tok.text)
        if tok.kind is TokenKind.DIRECTIVE:
            self.next()
            return A.Directive(tok.text)
        if tok.is_keyword("typedef"):
            return self._parse_typedef()
        if tok.is_keyword("struct") and self.peek(2).is_punct("{"):
            return self._parse_struct_def()
        return self._parse_function_or_global()

    def _parse_typedef(self) -> A.Node:
        self.next()  # typedef
        base = self.parse_type()
        name = self.expect_ident().text
        self.expect_punct(";")
        self.types.add_typedef(name, base)
        self._typedef_names.add(name)
        return A.Directive(f"typedef {base.spell()} {name};")

    def _parse_struct_def(self) -> A.StructDef:
        self.next()  # struct
        name = self.expect_ident().text
        struct = self.types.struct(name, declare=True)
        self.expect_punct("{")
        members: list[tuple[str, CType]] = []
        while not self.cur.is_punct("}"):
            base = self.parse_type()
            while True:
                mtype = base
                while self.accept_punct("*"):
                    mtype = Pointer(mtype)
                mname = self.expect_ident().text
                if self.accept_punct("["):
                    length = int(self.next().text, 0)
                    self.expect_punct("]")
                    mtype = Array(mtype, length)
                members.append((mname, mtype))
                if not self.accept_punct(","):
                    break
            self.expect_punct(";")
        self.expect_punct("}")
        self.expect_punct(";")
        struct.lay_out(members)
        return A.StructDef(struct)

    def _parse_function_or_global(self) -> A.Node:
        qualifiers = set()
        while self.cur.is_keyword(*CUDA_QUALIFIERS) or \
                self.cur.is_keyword("static", "extern"):
            qualifiers.add(self.next().text)
        base = self.parse_type()
        name = self.expect_ident().text
        if self.cur.is_punct("("):
            return self._parse_function(base, name, frozenset(qualifiers))
        decls = self._finish_decl_list(base, name)
        return A.DeclStmt(decls)

    def _parse_function(self, rtype: CType, name: str,
                        qualifiers: frozenset[str]) -> A.FunctionDef:
        self.expect_punct("(")
        params: list[A.Param] = []
        variadic = False
        if not self.cur.is_punct(")"):
            while True:
                if self.cur.is_punct("..."):
                    self.next()
                    variadic = True
                    break
                ptype = self.parse_type()
                pname = ""
                if self.cur.kind is TokenKind.IDENT:
                    pname = self.next().text
                if self.accept_punct("["):
                    # decays to pointer
                    if not self.cur.is_punct("]"):
                        self.next()
                    self.expect_punct("]")
                    ptype = Pointer(ptype)
                params.append(A.Param(pname, ptype))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        body = None
        if self.cur.is_punct("{"):
            body = self.parse_block()
        else:
            self.expect_punct(";")
        return A.FunctionDef(name, rtype, params, body, qualifiers, variadic)

    # ------------------------------------------------------------------ #
    # statements

    def parse_block(self) -> A.Block:
        self.expect_punct("{")
        block = A.Block()
        while not self.cur.is_punct("}"):
            block.stmts.append(self.parse_statement())
        self.expect_punct("}")
        return block

    def parse_statement(self) -> A.Stmt:
        line = self.cur.line
        stmt = self._parse_statement()
        if not stmt.line:
            stmt.line = line
        return stmt

    def _parse_statement(self) -> A.Stmt:
        tok = self.cur
        if tok.kind is TokenKind.PRAGMA:
            self.next()
            return A.Pragma(tok.text)
        if tok.kind is TokenKind.DIRECTIVE:
            self.next()
            return A.Directive(tok.text)
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_punct(";"):
            self.next()
            return A.Block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self.next()
            value = None if self.cur.is_punct(";") else self.parse_expression()
            self.expect_punct(";")
            return A.Return(value)
        if tok.is_keyword("break"):
            self.next()
            self.expect_punct(";")
            return A.Break()
        if tok.is_keyword("continue"):
            self.next()
            self.expect_punct(";")
            return A.Continue()
        if self._starts_decl():
            stmt = self._parse_decl_stmt()
            self.expect_punct(";")
            return stmt
        expr = self.parse_expression()
        self.expect_punct(";")
        return A.ExprStmt(expr)

    def _starts_decl(self) -> bool:
        if not self._starts_type():
            return False
        # A type keyword always starts a declaration in statement context;
        # a typedef/struct identifier does only if followed by a declarator.
        if self.cur.kind is TokenKind.IDENT:
            nxt = self.peek()
            return nxt.is_punct("*") or nxt.kind is TokenKind.IDENT
        return True

    def _parse_decl_stmt(self) -> A.DeclStmt:
        base = self.parse_type()
        name = self.expect_ident().text
        return A.DeclStmt(self._finish_decl_list(base, name, expect_semi=False))

    def _finish_decl_list(self, first_type: CType, first_name: str,
                          *, expect_semi: bool = True) -> list[A.VarDecl]:
        # ``first_type`` already includes the leading pointers of the first
        # declarator; later declarators re-apply '*' to the base type.
        base = first_type
        while isinstance(base, Pointer):
            base = base.target
        decls: list[A.VarDecl] = []

        def finish_one(ctype: CType, name: str) -> A.VarDecl:
            if self.accept_punct("["):
                length = int(self.next().text, 0)
                self.expect_punct("]")
                ctype = Array(ctype, length)
            init = None
            if self.accept_punct("="):
                init = self.parse_assignment()
            return A.VarDecl(name, ctype, init)

        decls.append(finish_one(first_type, first_name))
        while self.accept_punct(","):
            ctype: CType = base
            while self.accept_punct("*"):
                ctype = Pointer(ctype)
            name = self.expect_ident().text
            decls.append(finish_one(ctype, name))
        if expect_semi:
            self.expect_punct(";")
        return decls

    def _parse_if(self) -> A.If:
        self.next()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then = self.parse_statement()
        other = None
        if self.cur.is_keyword("else"):
            self.next()
            other = self.parse_statement()
        return A.If(cond, then, other)

    def _parse_while(self) -> A.While:
        self.next()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        return A.While(cond, self.parse_statement())

    def _parse_do_while(self) -> A.DoWhile:
        self.next()
        body = self.parse_statement()
        if not self.cur.is_keyword("while"):
            raise ParseError("expected 'while' after do-body",
                             self.cur.line, self.cur.col)
        self.next()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return A.DoWhile(body, cond)

    def _parse_for(self) -> A.For:
        self.next()
        self.expect_punct("(")
        init: A.Stmt | None = None
        if not self.cur.is_punct(";"):
            if self._starts_decl():
                init = self._parse_decl_stmt()
            else:
                init = A.ExprStmt(self.parse_expression())
        self.expect_punct(";")
        cond = None if self.cur.is_punct(";") else self.parse_expression()
        self.expect_punct(";")
        step = None if self.cur.is_punct(")") else self.parse_expression()
        self.expect_punct(")")
        return A.For(init, cond, step, self.parse_statement())

    # ------------------------------------------------------------------ #
    # expressions

    def parse_expression(self) -> A.Expr:
        expr = self.parse_assignment()
        while self.accept_punct(","):
            right = self.parse_assignment()
            expr = A.Binary(",", expr, right)
        return expr

    def parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        if self.cur.kind is TokenKind.PUNCT and self.cur.text in _ASSIGN_OPS:
            op = self.next().text
            right = self.parse_assignment()
            return A.Assign(op, left, right)
        return left

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self.accept_punct("?"):
            then = self.parse_assignment()
            self.expect_punct(":")
            other = self.parse_assignment()
            return A.Ternary(cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self.cur
            if tok.kind is not TokenKind.PUNCT:
                break
            prec = _BINARY_PREC.get(tok.text)
            if prec is None or prec < min_prec:
                break
            op = self.next().text
            right = self._parse_binary(prec + 1)
            left = A.Binary(op, left, right)
        return left

    def _parse_unary(self) -> A.Expr:
        tok = self.cur
        if tok.kind is TokenKind.PUNCT and tok.text in ("!", "~", "-", "+", "*", "&"):
            self.next()
            return A.Unary(tok.text, self._parse_unary())
        if tok.is_punct("++") or tok.is_punct("--"):
            self.next()
            return A.Unary(tok.text, self._parse_unary(), prefix=True)
        if tok.is_keyword("sizeof"):
            self.next()
            if self.cur.is_punct("(") and self._starts_type(self.peek()):
                self.expect_punct("(")
                ctype = self.parse_type()
                self.expect_punct(")")
                return A.SizeofType(ctype)
            return A.SizeofExpr(self._parse_unary())
        if tok.is_keyword("new"):
            self.next()
            ctype = self.parse_type()
            count = init = None
            if self.accept_punct("["):
                count = self.parse_expression()
                self.expect_punct("]")
            elif self.accept_punct("("):
                if not self.cur.is_punct(")"):
                    init = self.parse_assignment()
                self.expect_punct(")")
            return A.NewExpr(ctype, count, init)
        if tok.is_keyword("delete"):
            self.next()
            if self.accept_punct("["):
                self.expect_punct("]")
            return A.Unary("delete", self._parse_unary())
        if tok.is_punct("(") and self._starts_type(self.peek()):
            self.expect_punct("(")
            ctype = self.parse_type()
            self.expect_punct(")")
            return A.Cast(ctype, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self.cur.is_punct("<<<"):
                expr = self._parse_kernel_launch(expr)
            elif self.accept_punct("("):
                args = []
                if not self.cur.is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = A.Call(expr, args)
            elif self.accept_punct("["):
                index = self.parse_expression()
                self.expect_punct("]")
                expr = A.Index(expr, index)
            elif self.accept_punct("."):
                expr = A.Member(expr, self.expect_ident().text, arrow=False)
            elif self.accept_punct("->"):
                expr = A.Member(expr, self.expect_ident().text, arrow=True)
            elif self.cur.is_punct("++") or self.cur.is_punct("--"):
                op = self.next().text
                expr = A.Unary(op, expr, prefix=False)
            else:
                return expr

    def _parse_kernel_launch(self, kernel: A.Expr) -> A.KernelLaunch:
        self.expect_punct("<<<")
        grid = self.parse_assignment()
        self.expect_punct(",")
        block = self.parse_assignment()
        shmem = stream = None
        if self.accept_punct(","):
            shmem = self.parse_assignment()
            if self.accept_punct(","):
                stream = self.parse_assignment()
        self.expect_punct(">>>")
        self.expect_punct("(")
        args = []
        if not self.cur.is_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return A.KernelLaunch(kernel, grid, block, shmem, stream, args)

    def _parse_primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind is TokenKind.INT:
            self.next()
            return A.IntLit(tok.text)
        if tok.kind is TokenKind.FLOAT:
            self.next()
            return A.FloatLit(tok.text)
        if tok.kind is TokenKind.CHAR:
            self.next()
            return A.CharLit(tok.text)
        if tok.kind is TokenKind.STRING:
            self.next()
            return A.StringLit(tok.text)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self.next()
            return A.BoolLit(tok.text == "true")
        if tok.is_keyword("NULL") or tok.is_keyword("nullptr"):
            self.next()
            return A.NullLit(tok.text)
        if tok.kind is TokenKind.IDENT:
            self.next()
            return A.Ident(tok.text)
        if tok.is_punct("("):
            self.next()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

"""Mini-CUDA source instrumenter: the paper's ROSE-plugin equivalent.

Pipeline: :func:`~repro.instrument.parser.parse` source ->
:func:`~repro.instrument.transform.instrument` the AST ->
:func:`~repro.instrument.unparse.unparse` back to source.  The
instrumented program runs on :mod:`repro.interp` against the simulated
CUDA runtime and the XPlacer tracer.
"""

from .ast_nodes import TranslationUnit
from .errors import FrontendError, LexError, ParseError, TypeError_
from .lexer import tokenize
from .lvalue import AccessMode, Scope, is_heap_lvalue
from .parser import Parser, parse
from .pragmas import XplDiagnostic, XplReplace, parse_xpl_pragma
from .transform import TRACE_FNS, InstrumentationResult, instrument
from .typesys import (
    Array,
    CType,
    Pointer,
    Primitive,
    StructField,
    StructType,
    TypeTable,
    expand_pointer,
)
from .unparse import unparse, unparse_expr


def instrument_source(source: str) -> tuple[str, InstrumentationResult]:
    """One-call pipeline: parse, instrument, unparse.

    Returns the instrumented source plus the instrumentation summary.
    """
    result = instrument(parse(source))
    return unparse(result.unit), result


__all__ = [
    "TranslationUnit",
    "FrontendError", "LexError", "ParseError", "TypeError_",
    "tokenize",
    "AccessMode", "Scope", "is_heap_lvalue",
    "Parser", "parse",
    "XplDiagnostic", "XplReplace", "parse_xpl_pragma",
    "TRACE_FNS", "InstrumentationResult", "instrument", "instrument_source",
    "Array", "CType", "Pointer", "Primitive", "StructField", "StructType",
    "TypeTable", "expand_pointer",
    "unparse", "unparse_expr",
]

"""L-value classification and heap-effect analysis (paper §III-B).

XPlacer instruments "any memory read and write that *possibly* affects
memory allocated on the heap": dereferences, indexing through pointers,
and arrow member accesses.  It elides instrumentation when the access
cannot touch the heap -- plain (non-reference) variables, stack arrays,
dot-members of stack structs -- and when the l-value's location is not
accessed immediately (address-of, ``sizeof``).
"""

from __future__ import annotations

import enum

from . import ast_nodes as A
from .typesys import Array, CType, Pointer

__all__ = ["AccessMode", "is_heap_lvalue", "Scope"]


class AccessMode(enum.Enum):
    """How an expression's value/location is used by its context."""

    READ = "read"    # r-value context -> traceR on heap l-values
    WRITE = "write"  # assignment target -> traceW
    RMW = "rmw"      # ++/--/compound assignment -> traceRW
    NONE = "none"    # location not accessed (address-of, sizeof)


class Scope:
    """Lexically scoped symbol table: variable name -> declared type."""

    def __init__(self, parent: "Scope | None" = None) -> None:
        self.parent = parent
        self.vars: dict[str, CType] = {}

    def child(self) -> "Scope":
        return Scope(self)

    def declare(self, name: str, ctype: CType) -> None:
        self.vars[name] = ctype

    def lookup(self, name: str) -> CType | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


def _base_may_be_heap(expr: A.Expr, scope: Scope) -> bool:
    """Whether ``expr`` (used as a pointer/aggregate base) can point at heap."""
    if isinstance(expr, A.Ident):
        ctype = scope.lookup(expr.name)
        if isinstance(ctype, Array):
            return False  # a stack array decays to a non-heap pointer
        # Pointers and unknown identifiers may reference heap memory.
        return True
    if isinstance(expr, A.Unary) and expr.op == "&":
        return _base_may_be_heap(_strip(expr.operand), scope) and \
            is_heap_lvalue(expr.operand, scope)
    return True


def _strip(expr: A.Expr) -> A.Expr:
    return expr


def is_heap_lvalue(expr: A.Expr, scope: Scope) -> bool:
    """Whether ``expr`` is an l-value that may designate heap memory."""
    if isinstance(expr, A.Unary) and expr.op == "*":
        return True
    if isinstance(expr, A.Index):
        return _base_may_be_heap(expr.base, scope)
    if isinstance(expr, A.Member):
        if expr.arrow:
            return _base_may_be_heap(expr.base, scope)
        return is_heap_lvalue(expr.base, scope)  # (*p).f, a[i].f, ...
    return False

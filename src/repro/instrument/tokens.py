"""Token definitions for the mini-CUDA C front end."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KEYWORDS", "TYPE_KEYWORDS", "CUDA_QUALIFIERS"]


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    PRAGMA = "pragma"      # one whole `#pragma ...` line
    DIRECTIVE = "directive"  # other preprocessor lines (passed through)
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One token with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


#: Base type keywords of the supported C subset.
TYPE_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "size_t", "bool", "cudaError_t",
})

#: CUDA function-qualifier keywords.
CUDA_QUALIFIERS = frozenset({"__global__", "__device__", "__host__", "__shared__"})

KEYWORDS = frozenset({
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "struct", "sizeof", "const", "static", "extern", "typedef",
    "true", "false", "NULL", "nullptr", "new", "delete", "template", "class",
}) | TYPE_KEYWORDS | CUDA_QUALIFIERS

#: Multi-character punctuation, longest first (order matters for the lexer).
MULTI_PUNCT = (
    "<<<", ">>>",
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::",
)

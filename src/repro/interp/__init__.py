"""Executor for (instrumented) mini-CUDA programs.

Closes the paper's Fig 1 loop: ROSE-equivalent instrumentation
(:mod:`repro.instrument`) produces source whose tracing calls this
interpreter binds to the XPlacer runtime library and the simulated CUDA
runtime.
"""

from .interpreter import Interpreter, InterpHooks, run_program
from .values import InterpError, LValue

__all__ = ["Interpreter", "InterpHooks", "run_program", "InterpError",
           "LValue"]

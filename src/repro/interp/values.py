"""Value model and memory access helpers for the mini-CUDA interpreter.

Every variable lives in simulated memory (host stack allocations for
locals, the CUDA allocators for heap), so *addresses are real*: the
tracing functions inserted by the instrumenter receive the same addresses
the shadow memory table indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..instrument.typesys import Array, CType, Pointer, Primitive, StructType
from ..memsim import AddressSpace, Allocation

__all__ = [
    "LValue", "numpy_dtype", "load", "store",
    "ReturnSignal", "BreakSignal", "ContinueSignal", "InterpError",
]


class InterpError(RuntimeError):
    """A runtime failure of the interpreted program."""


class ReturnSignal(Exception):
    """Unwinds a function body on ``return``."""

    def __init__(self, value: Any) -> None:
        self.value = value


class BreakSignal(Exception):
    """Unwinds a loop body on ``break``."""


class ContinueSignal(Exception):
    """Unwinds a loop body on ``continue``."""


@dataclass(frozen=True)
class LValue:
    """A typed memory location."""

    addr: int
    ctype: CType


def numpy_dtype(ctype: CType) -> np.dtype:
    """The numpy dtype used to access a value of ``ctype`` in memory."""
    if isinstance(ctype, Pointer):
        return np.dtype(np.uint64)
    if isinstance(ctype, Primitive):
        table = {
            "char": np.int8, "bool": np.uint8, "short": np.int16,
            "int": np.int32, "unsigned int": np.uint32,
            "long": np.int64, "size_t": np.uint64,
            "float": np.float32, "double": np.float64,
        }
        if ctype.name in table:
            return np.dtype(table[ctype.name])
    raise InterpError(f"cannot access value of type {ctype.spell()}")


def load(space: AddressSpace, lv: LValue) -> Any:
    """Read the value at ``lv`` from simulated memory."""
    alloc = _find(space, lv.addr)
    dt = numpy_dtype(lv.ctype)
    off = lv.addr - alloc.base
    raw = alloc.view(dt, offset=off, count=1)[0]
    if dt.kind in "iu":
        return int(raw)
    return float(raw)


def store(space: AddressSpace, lv: LValue, value: Any) -> None:
    """Write ``value`` at ``lv`` in simulated memory."""
    alloc = _find(space, lv.addr)
    dt = numpy_dtype(lv.ctype)
    off = lv.addr - alloc.base
    view = alloc.view(dt, offset=off, count=1)
    if dt.kind in "iu":
        # C-style wraparound on overflow.
        view[0] = np.array(int(value), dtype=np.int64).astype(dt)
    else:
        view[0] = value


def _find(space: AddressSpace, addr: int) -> Allocation:
    alloc = space.find(addr)
    if alloc is None:
        raise InterpError(f"dereference of invalid address {addr:#x}")
    if not alloc.materialized:
        raise InterpError("interpreted programs need materialized memory")
    return alloc


def sizeof(ctype: CType) -> int:
    """``sizeof`` for the interpreter (arrays and structs included)."""
    return ctype.size

"""Value model and memory access helpers for the mini-CUDA interpreter.

Every variable lives in simulated memory (host stack allocations for
locals, the CUDA allocators for heap), so *addresses are real*: the
tracing functions inserted by the instrumenter receive the same addresses
the shadow memory table indexes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..instrument.typesys import Array, CType, Pointer, Primitive, StructType
from ..memsim import AddressSpace, Allocation

__all__ = [
    "LValue", "numpy_dtype", "load", "store",
    "ReturnSignal", "BreakSignal", "ContinueSignal", "InterpError",
]


class InterpError(RuntimeError):
    """A runtime failure of the interpreted program.

    When the failure unwinds through ``Interpreter.exec_stmt`` the
    interpreter decorates the exception (once, innermost statement wins)
    with execution context:

    * ``site`` -- the :class:`~repro.heatmap.store.SourceSite` of the
      statement that was executing (``None`` for failures outside
      statement execution);
    * ``thread`` -- ``(blockIdx.x, threadIdx.x)`` when the failure
      happened inside a kernel, else ``None``;
    * ``stack`` -- function names on the interpreter call stack,
      outermost first.

    The original message is preserved as a prefix of ``args[0]``.
    """

    site = None
    thread: tuple[int, int] | None = None
    stack: tuple[str, ...] = ()


class ReturnSignal(Exception):
    """Unwinds a function body on ``return``."""

    def __init__(self, value: Any) -> None:
        self.value = value


class BreakSignal(Exception):
    """Unwinds a loop body on ``break``."""


class ContinueSignal(Exception):
    """Unwinds a loop body on ``continue``."""


class LValue:
    """A typed memory location.

    ``view``/``idx`` optionally carry the location pre-resolved to a typed
    numpy view and element index (set by the interpreter for scalar stack
    cells, whose backing buffer is known at declaration); ``load``/``store``
    then skip the address-space lookup entirely.  Transient lvalues
    (pointer targets, array elements) leave ``view`` as ``None``.
    """

    __slots__ = ("addr", "ctype", "view", "idx")

    def __init__(self, addr: int, ctype: CType,
                 view: np.ndarray | None = None, idx: int = 0) -> None:
        self.addr = addr
        self.ctype = ctype
        self.view = view
        self.idx = idx

    def __repr__(self) -> str:
        return f"LValue(addr={self.addr:#x}, ctype={self.ctype!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LValue):
            return NotImplemented
        return self.addr == other.addr and self.ctype == other.ctype

    def __hash__(self) -> int:
        return hash((self.addr, self.ctype))


#: Pre-built dtypes: every scalar access shares these instances, so the
#: per-access cost is one string-keyed dict probe (``np.dtype(...)``
#: construction dominated the interpreter's load/store profile).
_U64 = np.dtype(np.uint64)
_PRIM_DTYPES: dict[str, np.dtype] = {
    name: np.dtype(t) for name, t in {
        "char": np.int8, "bool": np.uint8, "short": np.int16,
        "int": np.int32, "unsigned int": np.uint32,
        "long": np.int64, "size_t": np.uint64,
        "float": np.float32, "double": np.float64,
    }.items()
}

def numpy_dtype(ctype: CType) -> np.dtype:
    """The numpy dtype used to access a value of ``ctype`` in memory."""
    if isinstance(ctype, Primitive):
        dt = _PRIM_DTYPES.get(ctype.name)
        if dt is not None:
            return dt
    elif isinstance(ctype, Pointer):
        return _U64
    raise InterpError(f"cannot access value of type {ctype.spell()}")


def _typed_view(alloc: Allocation, dt: np.dtype) -> np.ndarray:
    """Whole-buffer view of ``alloc`` as ``dt``, cached on the allocation.

    The backing buffer never moves, so the view stays valid for the
    allocation's lifetime (load/store reject freed allocations before the
    cache is consulted); aligned scalar accesses then cost one index
    instead of a slice + ``.view`` per load/store.
    """
    cache = alloc.__dict__.get("_typed_views")
    if cache is None:
        cache = alloc._typed_views = {}
    view = cache.get(dt.char)
    if view is None:
        usable = (alloc.size // dt.itemsize) * dt.itemsize
        view = cache[dt.char] = alloc.data[:usable].view(dt)
    return view


def load(space: AddressSpace, lv: LValue) -> Any:
    """Read the value at ``lv`` from simulated memory."""
    view = lv.view
    if view is not None:
        # ``.item`` unboxes straight to a Python scalar in one call.
        return view.item(lv.idx)
    addr = lv.addr
    alloc = space.find(addr)
    if alloc is None or alloc.data is None:
        _reject(space, addr)
    dt = numpy_dtype(lv.ctype)
    idx, rem = divmod(addr - alloc.base, dt.itemsize)
    if rem == 0:
        return _typed_view(alloc, dt).item(idx)
    # unaligned (packed struct field): build the view directly
    raw = alloc.view(dt, offset=addr - alloc.base, count=1)[0]
    if dt.kind in "iu":
        return int(raw)
    return float(raw)


def store(space: AddressSpace, lv: LValue, value: Any) -> None:
    """Write ``value`` at ``lv`` in simulated memory."""
    view = lv.view
    if view is not None:
        dt = view.dtype
        idx = lv.idx
    else:
        addr = lv.addr
        alloc = space.find(addr)
        if alloc is None or alloc.data is None:
            _reject(space, addr)
        dt = numpy_dtype(lv.ctype)
        idx, rem = divmod(addr - alloc.base, dt.itemsize)
        if rem == 0:
            view = _typed_view(alloc, dt)
        else:
            view = alloc.view(dt, offset=addr - alloc.base, count=1)
            idx = 0
    if dt.kind in "iu":
        # C-style wraparound on overflow (pure-int masking: no numpy
        # array round-trip per scalar write).
        bits = dt.itemsize * 8
        iv = int(value) & ((1 << bits) - 1)
        if dt.kind == "i" and iv >= 1 << (bits - 1):
            iv -= 1 << bits
        view[idx] = iv
    else:
        view[idx] = value


def _reject(space: AddressSpace, addr: int) -> None:
    """Raise the precise error for an unloadable address."""
    if space.find(addr) is None:
        raise InterpError(f"dereference of invalid address {addr:#x}")
    raise InterpError("interpreted programs need materialized memory")


def sizeof(ctype: CType) -> int:
    """``sizeof`` for the interpreter (arrays and structs included)."""
    return ctype.size

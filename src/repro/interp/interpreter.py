"""Tree-walking interpreter for (instrumented) mini-CUDA programs.

Executes a parsed translation unit against the simulated CUDA runtime and
the XPlacer tracer -- the stand-in for "compile with the backend compiler,
link the runtime library, run on the target system" (paper Fig 1).

Key properties:

* every variable is memory-backed (host stack allocations), so addresses
  flowing through ``traceR``/``traceW``/``traceRW`` are real simulated
  addresses the shadow memory table can resolve;
* ``cudaMallocManaged``/``cudaMalloc``/``new`` allocate through the
  simulated runtime; the ``trc*`` wrapper builtins additionally register
  shadow memory, exactly like the paper's replacement functions;
* kernel launches execute the kernel body once per thread on the GPU
  context (``blockIdx``/``threadIdx``/``blockDim``/``gridDim`` resolve as
  builtins), so device-side traces classify as GPU accesses.
"""

from __future__ import annotations

import io
from typing import Any

from ..cudart import CudaRuntime, DevicePtr, cudaMemcpyKind, cudaMemoryAdvise
from ..heatmap.store import SourceSite
from ..instrument import ast_nodes as A
from ..instrument.transform import TRACE_FNS
from ..instrument.typesys import Array, CType, Pointer, Primitive, StructType
from ..memsim import MemoryKind, Platform, intel_pascal
from ..runtime import Tracer, XplAllocData, trace_print
from .values import (
    _PRIM_DTYPES,
    _typed_view,
    BreakSignal,
    ContinueSignal,
    InterpError,
    LValue,
    ReturnSignal,
    load,
    numpy_dtype,
    store,
)

__all__ = ["Interpreter", "InterpHooks", "run_program"]

_TRACE_NAMES = set(TRACE_FNS.values())

_MEMCPY_KINDS = {
    0: cudaMemcpyKind.cudaMemcpyHostToHost,
    1: cudaMemcpyKind.cudaMemcpyHostToDevice,
    2: cudaMemcpyKind.cudaMemcpyDeviceToHost,
    3: cudaMemcpyKind.cudaMemcpyDeviceToDevice,
    4: cudaMemcpyKind.cudaMemcpyDefault,
}

#: Names accepted as advice constants in interpreted source.
_ADVICE_NAMES = {a.name: a for a in cudaMemoryAdvise}


class InterpHooks:
    """Pause-capable observation points of one :class:`Interpreter`.

    The debugger (``repro.debug``) installs a subclass on
    ``Interpreter.hooks``; every callback runs synchronously on the
    interpreter's own stack, so a hook may block (run a command loop) and
    the program resumes exactly where it paused when the hook returns.
    The default implementations do nothing.
    """

    def on_stmt(self, interp: "Interpreter", stmt: A.Stmt, env) -> None:
        """Before each non-block statement executes.  ``interp._line`` is
        already the statement's source line."""

    def on_trace(self, interp: "Interpreter", fn: str, addr: int,
                 size: int, site: SourceSite | None) -> None:
        """After each instrumented ``trace*`` call completed (shadow and
        any driver work done), before the traced access's value is used."""

    def on_kernel_entry(self, interp: "Interpreter", fn: A.FunctionDef,
                        grid: int, block: int) -> None:
        """Before a kernel launch starts executing its thread loop."""


class _Env:
    """Lexical environment mapping names to typed memory cells."""

    def __init__(self, parent: "_Env | None" = None) -> None:
        self.parent = parent
        self.cells: dict[str, LValue] = {}

    def child(self) -> "_Env":
        return _Env(self)

    def declare(self, name: str, lv: LValue) -> None:
        self.cells[name] = lv

    def lookup(self, name: str) -> LValue | None:
        env: _Env | None = self
        while env is not None:
            lv = env.cells.get(name)
            if lv is not None:
                return lv
            env = env.parent
        return None


class Interpreter:
    """Executes one translation unit."""

    def __init__(
        self,
        unit: A.TranslationUnit,
        *,
        platform: Platform | None = None,
        tracer: Tracer | None = None,
        out: io.TextIOBase | None = None,
        source_name: str = "<mini-cuda>",
        backend: str | None = None,
    ) -> None:
        self.unit = unit
        self.source_name = source_name
        from ..codegen.backend import BACKENDS, default_backend
        self.backend = backend or default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {', '.join(BACKENDS)}")
        #: Source line of the statement currently executing (parser-stamped;
        #: attributes instrumented trace calls without stack inspection).
        self._line = 0
        self.platform = platform or intel_pascal()
        self.runtime = CudaRuntime(self.platform, materialize=True)
        # The tracer is NOT attached as a runtime observer here: in the
        # mini-CUDA pipeline only the instrumented calls trace, exactly as
        # in the paper's compiled workflow.  It is *bound* for processor
        # context so device-side traces classify as GPU accesses.
        self._space = self.platform.address_space
        self.tracer = (tracer or Tracer()).bind(self.runtime)
        self.tracer.backend = self.backend
        #: Bound trace methods by wrapper name (one getattr per program,
        #: not one per instrumented access).
        self._trace_fns = {n: getattr(self.tracer, n) for n in _TRACE_NAMES}
        self.out = out or io.StringIO()
        self.functions = {f.name: f for f in unit.functions()}
        self.globals = _Env()
        self._thread: dict[str, int] = {}
        #: Optional :class:`InterpHooks` (the interactive debugger).
        self.hooks: InterpHooks | None = None
        #: ``(function name, call-site line)`` frames, outermost first.
        self.call_stack: list[tuple[str, int]] = []
        #: Size-keyed pool of recycled stack cells plus the stack of
        #: per-call frames feeding it (see :meth:`_alloc_local`).
        self._cell_pool: dict[int, list] = {}
        self._frames: list[list] = []
        self._init_globals()

    # ------------------------------------------------------------------ #
    # setup / entry

    def _init_globals(self) -> None:
        for item in self.unit.items:
            if isinstance(item, A.DeclStmt):
                for d in item.decls:
                    lv = self._alloc_local(d.name, d.ctype)
                    self.globals.declare(d.name, lv)
                    if d.init is not None:
                        value, _ = self.eval(d.init, self.globals)
                        store(self._space, lv, value)

    def run(self, entry: str = "main", args: list[Any] | None = None) -> Any:
        """Execute ``entry``; returns its return value."""
        return self.call_function(entry, args or [])

    @property
    def stdout(self) -> str:
        """Captured ``printf``/diagnostic output (StringIO sinks only)."""
        if isinstance(self.out, io.StringIO):
            return self.out.getvalue()
        raise InterpError("stdout capture needs a StringIO sink")

    # ------------------------------------------------------------------ #
    # functions

    def call_function(self, name: str, args: list[Any]) -> Any:
        fn = self.functions.get(name)
        if fn is None or fn.body is None:
            return self._call_builtin(name, args, raw_args=None, env=None)
        return self._invoke(fn, args)

    def _invoke(self, fn: A.FunctionDef, args: list[Any]) -> Any:
        """Call an already-resolved function (kernel loops skip the name
        lookup this way)."""
        env = self.globals.child()
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name} expects {len(fn.params)} arguments, got {len(args)}")
        space = self._space
        frame: list = []
        self._frames.append(frame)
        self.call_stack.append((fn.name, self._line))
        try:
            for param, value in zip(fn.params, args):
                lv = self._alloc_local(param.name, param.ctype)
                store(space, lv, value)
                env.declare(param.name, lv)
            try:
                self.exec_stmt(fn.body, env)
            except ReturnSignal as r:
                return r.value
            return None
        finally:
            self.call_stack.pop()
            self._frames.pop()
            pool = self._cell_pool
            for alloc in frame:
                pool.setdefault(alloc.size, []).append(alloc)

    def _alloc_local(self, name: str, ctype: CType) -> LValue:
        """A zeroed host cell for one local/param.

        Cells are pooled per size: a kernel runs its body once per simulated
        thread, and allocating a fresh host block per local per thread both
        leaks address space and pays a sorted-insert each time.  Cells
        allocated inside a function frame return to the pool when the frame
        exits (addresses escaping a returned frame are C undefined
        behaviour, so reuse is fair game).
        """
        size = max(1, ctype.size)
        pool = self._cell_pool.get(size)
        if pool:
            alloc = pool.pop()
            alloc.data[:] = 0
        else:
            alloc = self._space.allocate(
                size, MemoryKind.HOST, label=f"stack:{name}")
        if self._frames:
            self._frames[-1].append(alloc)
        if type(ctype) is Pointer or (
                type(ctype) is Primitive and ctype.name in _PRIM_DTYPES):
            # Pre-resolve scalar cells: load/store skip the address lookup.
            return LValue(alloc.base, ctype,
                          view=_typed_view(alloc, numpy_dtype(ctype)))
        return LValue(alloc.base, ctype)

    # ------------------------------------------------------------------ #
    # statements

    def exec_stmt(self, s: A.Stmt, env: _Env) -> None:
        if s.line:
            self._line = s.line
        handler = _EXEC.get(s.__class__)
        if handler is None:
            handler = _mro_fallback(_EXEC, s.__class__)
            if handler is None:
                raise InterpError(f"cannot execute {type(s).__name__}")
        hooks = self.hooks
        if hooks is not None and handler is not _EXEC_BLOCK:
            hooks.on_stmt(self, s, env)
        try:
            handler(self, s, env)
        except InterpError as exc:
            self._decorate_error(exc)
            raise

    def _decorate_error(self, exc: InterpError) -> None:
        """Attach source/thread context to ``exc`` (innermost wins)."""
        if exc.site is not None:
            return
        exc.site = SourceSite(self.source_name, self._line)
        exc.stack = tuple(name for name, _ in self.call_stack)
        where = f"{self.source_name}:{self._line}"
        t = self._thread
        if t:
            exc.thread = (t.get("blockIdx_x", 0), t.get("threadIdx_x", 0))
            where += (f" [blockIdx.x={exc.thread[0]}"
                      f" threadIdx.x={exc.thread[1]}]")
        if exc.args and isinstance(exc.args[0], str):
            exc.args = (f"{exc.args[0]} (at {where})",) + exc.args[1:]

    def _exec_block(self, s: A.Block, env: _Env) -> None:
        inner = env.child()
        for x in s.stmts:
            self.exec_stmt(x, inner)

    def _exec_decl(self, s: A.DeclStmt, env: _Env) -> None:
        for d in s.decls:
            lv = self._alloc_local(d.name, d.ctype)
            env.declare(d.name, lv)
            if d.init is not None:
                value, _ = self.eval(d.init, env)
                if not isinstance(d.ctype, (StructType, Array)):
                    store(self._space, lv, value)

    def _exec_expr(self, s: A.ExprStmt, env: _Env) -> None:
        self.eval(s.expr, env)

    def _exec_if(self, s: A.If, env: _Env) -> None:
        cond, _ = self.eval(s.cond, env)
        if cond:
            self.exec_stmt(s.then, env)
        elif s.other is not None:
            self.exec_stmt(s.other, env)

    def _exec_while(self, s: A.While, env: _Env) -> None:
        while self.eval(s.cond, env)[0]:
            try:
                self.exec_stmt(s.body, env)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _exec_do_while(self, s: A.DoWhile, env: _Env) -> None:
        while True:
            try:
                self.exec_stmt(s.body, env)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if not self.eval(s.cond, env)[0]:
                break

    def _exec_for(self, s: A.For, env: _Env) -> None:
        inner = env.child()
        if s.init is not None:
            self.exec_stmt(s.init, inner)
        while s.cond is None or self.eval(s.cond, inner)[0]:
            try:
                self.exec_stmt(s.body, inner)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if s.step is not None:
                self.eval(s.step, inner)

    def _exec_return(self, s: A.Return, env: _Env) -> None:
        value = self.eval(s.value, env)[0] if s.value is not None else None
        raise ReturnSignal(value)

    def _exec_break(self, s: A.Break, env: _Env) -> None:
        raise BreakSignal()

    def _exec_continue(self, s: A.Continue, env: _Env) -> None:
        raise ContinueSignal()

    def _exec_nop(self, s: A.Stmt, env: _Env) -> None:
        pass  # pragmas/directives pass through; no runtime effect

    # ------------------------------------------------------------------ #
    # expressions

    def eval(self, e: A.Expr, env: _Env) -> tuple[Any, CType | None]:
        handler = _EVAL.get(e.__class__)
        if handler is None:
            handler = _mro_fallback(_EVAL, e.__class__)
            if handler is None:
                raise InterpError(f"cannot evaluate {type(e).__name__}")
        return handler(self, e, env)

    def _eval_int_lit(self, e: A.IntLit, env: _Env):
        return e.value, None

    def _eval_float_lit(self, e: A.FloatLit, env: _Env):
        return e.value, None

    def _eval_bool_lit(self, e: A.BoolLit, env: _Env):
        return int(e.value), None

    def _eval_null_lit(self, e: A.NullLit, env: _Env):
        return 0, None

    def _eval_char_lit(self, e: A.CharLit, env: _Env):
        body = e.text[1:-1].encode().decode("unicode_escape")
        return ord(body), None

    def _eval_string_lit(self, e: A.StringLit, env: _Env):
        return e.text[1:-1], None

    def _eval_raw(self, e: A.Raw, env: _Env):
        return e.text, None

    def _eval_ident(self, e: A.Ident, env: _Env):
        special = self._thread.get(e.name)
        if special is not None:
            return special, None
        lv = env.lookup(e.name)
        if lv is None:
            if e.name in self.functions:
                return self.functions[e.name], None
            raise InterpError(f"undefined identifier {e.name!r}")
        ctype = lv.ctype
        if type(ctype) is Array:
            return lv.addr, Pointer(ctype.element)  # decay
        if type(ctype) is StructType:
            return lv.addr, ctype  # struct value = its address here
        return load(self._space, lv), ctype

    def _eval_member(self, e: A.Member, env: _Env):
        if not e.arrow and isinstance(e.base, A.Ident) and e.base.name in (
                "threadIdx", "blockIdx", "blockDim", "gridDim"):
            value = self._thread_builtin(f"{e.base.name}_{e.name}")
            if value is None:
                raise InterpError(f"{e.base.name}.{e.name} used outside a kernel")
            return value, None
        return self._eval_place(e, env)

    def _eval_place(self, e: A.Expr, env: _Env):
        lv = self.lvalue(e, env)
        if isinstance(lv.ctype, (StructType, Array)):
            return lv.addr, lv.ctype
        return load(self._space, lv), lv.ctype

    def _eval_ternary(self, e: A.Ternary, env: _Env):
        cond, _ = self.eval(e.cond, env)
        return self.eval(e.then if cond else e.other, env)

    def _eval_cast(self, e: A.Cast, env: _Env):
        value, _ = self.eval(e.operand, env)
        if isinstance(e.ctype, Pointer):
            return int(value), e.ctype
        if isinstance(e.ctype, Primitive) and not e.ctype.is_float:
            return int(value), e.ctype
        return float(value), e.ctype

    def _eval_sizeof_type(self, e: A.SizeofType, env: _Env):
        return e.ctype.size, None

    def _eval_sizeof_expr(self, e: A.SizeofExpr, env: _Env):
        _, ctype = self._type_of(e.operand, env)
        if ctype is None:
            raise InterpError("cannot compute sizeof of untyped expression")
        return ctype.size, None

    def _eval_kernel_launch(self, e: A.KernelLaunch, env: _Env):
        self._launch(e, env)
        return None, None

    # -- lvalues -------------------------------------------------------- #

    def lvalue(self, e: A.Expr, env: _Env) -> LValue:
        """Resolve an expression to a typed memory location."""
        handler = _LVALUE.get(e.__class__)
        if handler is None:
            handler = _mro_fallback(_LVALUE, e.__class__)
            if handler is None:
                raise InterpError(f"not an l-value: {type(e).__name__}")
        return handler(self, e, env)

    def _lvalue_ident(self, e: A.Ident, env: _Env) -> LValue:
        lv = env.lookup(e.name)
        if lv is None:
            raise InterpError(f"undefined identifier {e.name!r}")
        return lv

    def _lvalue_unary(self, e: A.Unary, env: _Env) -> LValue:
        if e.op != "*":
            raise InterpError(f"not an l-value: {type(e).__name__}")
        addr, ctype = self.eval(e.operand, env)
        target = ctype.target if isinstance(ctype, Pointer) else None
        if target is None:
            raise InterpError("dereference of non-pointer value")
        return LValue(int(addr), target)

    def _lvalue_index(self, e: A.Index, env: _Env) -> LValue:
        base, ctype = self.eval(e.base, env)
        idx, _ = self.eval(e.index, env)
        if not isinstance(ctype, Pointer):
            raise InterpError("indexing a non-pointer value")
        return LValue(int(base) + int(idx) * ctype.target.size, ctype.target)

    def _lvalue_member(self, e: A.Member, env: _Env) -> LValue:
        if e.arrow:
            base, ctype = self.eval(e.base, env)
            if not isinstance(ctype, Pointer) or \
                    not isinstance(ctype.target, StructType):
                raise InterpError("'->' on a non-struct-pointer value")
            struct = ctype.target
            base_addr = int(base)
        else:
            base_lv = self.lvalue(e.base, env)
            if not isinstance(base_lv.ctype, StructType):
                raise InterpError("'.' on a non-struct value")
            struct = base_lv.ctype
            base_addr = base_lv.addr
        f = struct.field_named(e.name)
        return LValue(base_addr + f.offset, f.type)

    def _lvalue_call(self, e: A.Call, env: _Env) -> LValue:
        if isinstance(e.callee, A.Ident) and e.callee.name in _TRACE_NAMES:
            return self._trace_lvalue(e.callee.name, e.args[0], env)
        raise InterpError(f"not an l-value: {type(e).__name__}")

    def _lvalue_cast(self, e: A.Cast, env: _Env) -> LValue:
        return self.lvalue(e.operand, env)

    def _trace_lvalue(self, fn: str, inner: A.Expr, env: _Env) -> LValue:
        lv = self.lvalue(inner, env)
        size = max(1, lv.ctype.size)
        trace = self._trace_fns[fn]
        site = None
        if self.tracer.heat is not None:
            site = SourceSite(self.source_name, self._line)
            trace(lv.addr, size, site=site)
        else:
            trace(lv.addr, size)
        hooks = self.hooks
        if hooks is not None:
            hooks.on_trace(self, fn, lv.addr, size, site)
        return lv

    # -- operators ------------------------------------------------------ #

    def _eval_unary(self, e: A.Unary, env: _Env) -> tuple[Any, CType | None]:
        space = self._space
        if e.op == "&":
            lv = self.lvalue(e.operand, env)
            return lv.addr, Pointer(lv.ctype)
        if e.op == "*":
            lv = self.lvalue(e, env)
            if isinstance(lv.ctype, (StructType, Array)):
                return lv.addr, lv.ctype
            return load(space, lv), lv.ctype
        if e.op in ("++", "--"):
            lv = self.lvalue(e.operand, env)
            old = load(space, lv)
            step = lv.ctype.target.size if isinstance(lv.ctype, Pointer) else 1
            new = old + step if e.op == "++" else old - step
            store(space, lv, new)
            return (new if e.prefix else old), lv.ctype
        if e.op == "delete":
            addr, _ = self.eval(e.operand, env)
            self._free_addr(int(addr))
            return None, None
        value, ctype = self.eval(e.operand, env)
        if e.op == "-":
            return -value, ctype
        if e.op == "+":
            return value, ctype
        if e.op == "!":
            return int(not value), None
        if e.op == "~":
            return ~int(value), ctype
        raise InterpError(f"unsupported unary operator {e.op!r}")

    def _eval_binary(self, e: A.Binary, env: _Env) -> tuple[Any, CType | None]:
        if e.op == ",":
            self.eval(e.left, env)
            return self.eval(e.right, env)
        if e.op == "&&":
            left, _ = self.eval(e.left, env)
            if not left:
                return 0, None
            return int(bool(self.eval(e.right, env)[0])), None
        if e.op == "||":
            left, _ = self.eval(e.left, env)
            if left:
                return 1, None
            return int(bool(self.eval(e.right, env)[0])), None
        left, lt = self.eval(e.left, env)
        right, rt = self.eval(e.right, env)
        # pointer arithmetic
        if isinstance(lt, Pointer) and e.op in ("+", "-") and not isinstance(rt, Pointer):
            scale = lt.target.size
            return (left + right * scale if e.op == "+"
                    else left - right * scale), lt
        if isinstance(rt, Pointer) and e.op == "+":
            return right + left * rt.target.size, rt
        if isinstance(lt, Pointer) and isinstance(rt, Pointer) and e.op == "-":
            return (left - right) // lt.target.size, None
        fn = _BIN_OPS.get(e.op)
        if fn is None:
            raise InterpError(f"unsupported binary operator {e.op!r}")
        return fn(left, right), (lt if isinstance(lt, Pointer) else lt or rt)

    def _eval_assign(self, e: A.Assign, env: _Env) -> tuple[Any, CType | None]:
        space = self._space
        value, _ = self.eval(e.value, env)
        lv = self.lvalue(e.target, env)
        if e.op == "=":
            new = value
        else:
            old = load(space, lv)
            op = e.op[:-1]
            if isinstance(lv.ctype, Pointer) and op in ("+", "-"):
                value = value * lv.ctype.target.size
            new = _BIN_OPS[op](old, value)
        store(space, lv, new)
        return new, lv.ctype

    def _eval_new(self, e: A.NewExpr, env: _Env) -> tuple[Any, CType]:
        count = 1
        if e.count is not None:
            count = int(self.eval(e.count, env)[0])
        nbytes = max(1, e.ctype.size * count)
        ptr = self.runtime.host_malloc(nbytes, label="new")
        self.tracer.trc_register(ptr.alloc)  # heap memory is traced
        if e.init is not None:
            value, _ = self.eval(e.init, env)
            store(self._space, LValue(ptr.addr, e.ctype), value)
        return ptr.addr, Pointer(e.ctype)

    # -- calls ---------------------------------------------------------- #

    def _eval_call(self, e: A.Call, env: _Env) -> tuple[Any, CType | None]:
        if not isinstance(e.callee, A.Ident):
            raise InterpError("only direct calls are supported")
        name = e.callee.name
        if name in _TRACE_NAMES:
            lv = self._trace_lvalue(name, e.args[0], env)
            if isinstance(lv.ctype, (StructType, Array)):
                return lv.addr, lv.ctype
            return load(self._space, lv), lv.ctype
        if name == "XplAllocData":
            return self._make_alloc_data(e, env), None
        fn = self.functions.get(name)
        if fn is not None and fn.body is not None:
            args = [self.eval(a, env)[0] for a in e.args]
            return self._invoke(fn, args), fn.return_type
        args = [self.eval(a, env)[0] for a in e.args]
        return self._call_builtin(name, args, raw_args=e.args, env=env), None

    def _make_alloc_data(self, e: A.Call, env: _Env) -> XplAllocData:
        addr, _ = self.eval(e.args[0], env)
        name = self.eval(e.args[1], env)[0]
        size = int(self.eval(e.args[2], env)[0])
        alloc = self._space.find(int(addr))
        return XplAllocData(int(addr), str(name), size, alloc)

    def _thread_builtin(self, name: str) -> int | None:
        return self._thread.get(name)

    # -- kernels --------------------------------------------------------- #

    def _launch(self, e: A.KernelLaunch, env: _Env,
                traced_name: str | None = None) -> None:
        grid = int(self.eval(e.grid, env)[0])
        block = int(self.eval(e.block, env)[0])
        kernel = e.kernel
        if not isinstance(kernel, A.Ident):
            raise InterpError("kernel launch needs a direct kernel name")
        fn = self.functions.get(kernel.name)
        if fn is None or fn.body is None:
            raise InterpError(f"undefined kernel {kernel.name!r}")
        args = [self.eval(a, env)[0] for a in e.args]
        self._run_kernel(fn, grid, block, args)

    def _run_kernel(self, fn: A.FunctionDef, grid: int, block: int,
                    args: list[Any]) -> None:
        hooks = self.hooks
        if hooks is not None:
            hooks.on_kernel_entry(self, fn, grid, block)

        def interp_body() -> None:
            # One dict mutated per simulated thread: the builtins are read
            # through ``_thread.get`` so identity never leaks.
            thread = {
                "blockIdx_x": 0, "threadIdx_x": 0,
                "blockDim_x": block, "gridDim_x": grid,
            }
            self._thread = thread
            try:
                for b in range(grid):
                    thread["blockIdx_x"] = b
                    for t in range(block):
                        thread["threadIdx_x"] = t
                        self._invoke(fn, list(args))
            finally:
                self._thread = {}

        if self.backend != "interp" and hooks is None:
            from ..codegen.backend import run_compiled

            def body(ctx) -> None:
                run_compiled(self, fn, grid, block, args, interp_body)
        else:
            # Hooked runs (the debugger) need per-statement control; the
            # compiled tiers would bypass every breakpoint.
            def body(ctx) -> None:
                interp_body()

        self.runtime.launch(body, grid, block, name=fn.name,
                            work=grid * block)

    # -- builtins --------------------------------------------------------- #

    def _call_builtin(self, name: str, args: list[Any],
                      raw_args, env) -> Any:
        rt = self.runtime
        space = self._space

        if name in ("cudaMallocManaged", "trcMallocManaged"):
            out_ptr, size = int(args[0]), int(args[1])
            ptr = rt.malloc_managed(size, label=self._label_for(raw_args, env))
            store(space, LValue(out_ptr, Pointer(Primitive("size_t", 8))), ptr.addr)
            if name.startswith("trc"):
                self.tracer.trc_register(ptr.alloc)
            return 0
        if name in ("cudaMalloc", "trcMalloc"):
            out_ptr, size = int(args[0]), int(args[1])
            ptr = rt.malloc(size, label=self._label_for(raw_args, env))
            store(space, LValue(out_ptr, Pointer(Primitive("size_t", 8))), ptr.addr)
            if name.startswith("trc"):
                self.tracer.trc_register(ptr.alloc)
            return 0
        if name in ("cudaFree", "trcFree", "free"):
            self._free_addr(int(args[0]), trace=name.startswith("trc"))
            return 0
        if name == "malloc":
            ptr = rt.host_malloc(int(args[0]), label="malloc")
            self.tracer.trc_register(ptr.alloc)
            return ptr.addr
        if name in ("cudaMemcpy", "trcMemcpy"):
            dst, src, nbytes = int(args[0]), int(args[1]), int(args[2])
            kind = _MEMCPY_KINDS[int(args[3])] if len(args) > 3 \
                else cudaMemcpyKind.cudaMemcpyDefault
            observers = rt.observers
            if name == "trcMemcpy" and self.tracer not in observers:
                rt.subscribe(self.tracer)
                rt.memcpy(self._as_ptr(dst), self._as_ptr(src), nbytes, kind)
                rt.unsubscribe(self.tracer)
            else:
                rt.memcpy(self._as_ptr(dst), self._as_ptr(src), nbytes, kind)
            return 0
        if name == "cudaMemAdvise":
            ptr, nbytes, advice, device = args
            advice_enum = (_ADVICE_NAMES[advice] if isinstance(advice, str)
                           else list(cudaMemoryAdvise)[int(advice) - 1])
            rt.mem_advise(self._as_ptr(int(ptr)), int(nbytes),
                          advice_enum, int(device))
            return 0
        if name == "cudaDeviceSynchronize":
            rt.device_synchronize()
            return 0
        if name in ("tracePrint", "trcPrn"):
            descriptors = [a for a in args if isinstance(a, XplAllocData)]
            trace_print(self.tracer, descriptors, self.out)
            return 0
        if name == "traceKernelLaunch":
            grid, block = int(args[0]), int(args[1])
            kernel = args[4]
            if not isinstance(kernel, A.FunctionDef):
                raise InterpError("traceKernelLaunch needs a kernel function")
            self.tracer.on_kernel_launch(kernel.name, grid, block)
            self._run_kernel(kernel, grid, block, list(args[5:]))
            return 0
        if name == "printf":
            fmt = str(args[0]).replace("\\n", "\n").replace("\\t", "\t")
            fmt = fmt.replace("%d", "{}").replace("%f", "{}").replace("%s", "{}")
            fmt = fmt.replace("%lu", "{}").replace("%g", "{}").replace("%p", "{:#x}")
            self.out.write(fmt.format(*args[1:]))
            return 0
        raise InterpError(f"unknown function {name!r}")

    def _label_for(self, raw_args, env) -> str:
        # Label managed allocations by the pointer expression, e.g.
        # cudaMallocManaged((void**)&a, ...) -> "a".
        if not raw_args:
            return "managed"
        arg = raw_args[0]
        while isinstance(arg, (A.Cast,)):
            arg = arg.operand
        if isinstance(arg, A.Unary) and arg.op == "&":
            inner = arg.operand
            from ..instrument.unparse import unparse_expr
            return unparse_expr(inner)
        return "managed"

    def _as_ptr(self, addr: int) -> DevicePtr:
        alloc = self._space.find(addr)
        if alloc is None:
            raise InterpError(f"memcpy with invalid address {addr:#x}")
        return DevicePtr(self.runtime, alloc, addr - alloc.base)

    def _free_addr(self, addr: int, *, trace: bool = False) -> None:
        alloc = self._space.find(addr)
        if alloc is None or alloc.base != addr:
            raise InterpError(f"free of invalid address {addr:#x}")
        if trace:
            self.tracer.trc_free(alloc)
        else:
            self.tracer.smt.remove(addr, self.tracer.epoch)
        self.runtime.free(DevicePtr(self.runtime, alloc, 0))

    # -- typing helper ---------------------------------------------------- #

    def _type_of(self, e: A.Expr, env: _Env) -> tuple[Any, CType | None]:
        try:
            return self.eval(e, env)
        except InterpError:
            return None, None


def _cdiv(a, b):
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _cmod(a, b):
    return a - _cdiv(a, b) * b


#: Non-short-circuit binary operators (also the compound-assignment cores).
_BIN_OPS = {
    "+": lambda a, b: a + b, "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _cdiv, "%": _cmod,
    "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
    "&": lambda a, b: int(a) & int(b), "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b), ">>": lambda a, b: int(a) >> int(b),
}

#: Per-node-class dispatch tables.  One dict probe replaces the isinstance
#: ladder ``exec_stmt``/``eval`` used to walk for every node executed --
#: the single hottest cost in interpreting a kernel body once per thread.
_EXEC = {
    A.Block: Interpreter._exec_block,
    A.DeclStmt: Interpreter._exec_decl,
    A.ExprStmt: Interpreter._exec_expr,
    A.If: Interpreter._exec_if,
    A.While: Interpreter._exec_while,
    A.DoWhile: Interpreter._exec_do_while,
    A.For: Interpreter._exec_for,
    A.Return: Interpreter._exec_return,
    A.Break: Interpreter._exec_break,
    A.Continue: Interpreter._exec_continue,
    A.Pragma: Interpreter._exec_nop,
    A.Directive: Interpreter._exec_nop,
}

#: Block handler identity: blocks carry no line of their own, so the
#: per-statement hook skips them (it fires for every *leaf* statement).
_EXEC_BLOCK = Interpreter._exec_block

_LVALUE = {
    A.Ident: Interpreter._lvalue_ident,
    A.Unary: Interpreter._lvalue_unary,
    A.Index: Interpreter._lvalue_index,
    A.Member: Interpreter._lvalue_member,
    A.Call: Interpreter._lvalue_call,
    A.Cast: Interpreter._lvalue_cast,
}

_EVAL = {
    A.IntLit: Interpreter._eval_int_lit,
    A.FloatLit: Interpreter._eval_float_lit,
    A.BoolLit: Interpreter._eval_bool_lit,
    A.NullLit: Interpreter._eval_null_lit,
    A.CharLit: Interpreter._eval_char_lit,
    A.StringLit: Interpreter._eval_string_lit,
    A.Raw: Interpreter._eval_raw,
    A.Ident: Interpreter._eval_ident,
    A.Member: Interpreter._eval_member,
    A.Index: Interpreter._eval_place,
    A.Unary: Interpreter._eval_unary,
    A.Binary: Interpreter._eval_binary,
    A.Assign: Interpreter._eval_assign,
    A.Ternary: Interpreter._eval_ternary,
    A.Call: Interpreter._eval_call,
    A.Cast: Interpreter._eval_cast,
    A.SizeofType: Interpreter._eval_sizeof_type,
    A.SizeofExpr: Interpreter._eval_sizeof_expr,
    A.KernelLaunch: Interpreter._eval_kernel_launch,
    A.NewExpr: Interpreter._eval_new,
}


def _mro_fallback(table: dict, klass: type):
    """Resolve a dispatch entry through ``klass``'s bases (subclassed AST
    nodes dispatch like their parents) and cache the result."""
    for base in klass.__mro__[1:]:
        handler = table.get(base)
        if handler is not None:
            table[klass] = handler
            return handler
    return None


def run_program(source: str, *, instrumented: bool = True,
                platform: Platform | None = None,
                tracer: Tracer | None = None,
                source_name: str = "<mini-cuda>",
                entry: str = "main",
                backend: str | None = None) -> Interpreter:
    """Parse (+instrument) and execute ``source``; returns the interpreter
    for inspection of tracer state and captured output."""
    from ..instrument import instrument as _instrument, parse

    unit = parse(source)
    if instrumented:
        _instrument(unit)
    interp = Interpreter(unit, platform=platform, tracer=tracer,
                         source_name=source_name, backend=backend)
    interp.run(entry)
    return interp

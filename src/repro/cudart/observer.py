"""Observer protocol through which XPlacer's runtime watches the CUDA API.

In the paper, instrumentation rewrites the *source* so every heap access
and CUDA call goes through the tracing API.  In the Python workloads the
same effect is achieved by subscription: the simulated runtime publishes
every allocation, access, transfer, advice call and kernel launch to its
observers, and :class:`repro.runtime.tracer.Tracer` is such an observer.
(The mini-CUDA pipeline instead calls the tracing API explicitly from
instrumented source, exactly like the paper.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..memsim import Allocation, Processor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .advice import cudaMemcpyKind, cudaMemoryAdvise

__all__ = ["AccessObserver", "ObserverBase", "CALLBACK_NAMES", "overriders"]

#: Every callback the runtime publishes (one fan-out list is kept per name).
CALLBACK_NAMES = (
    "on_alloc", "on_free", "on_access", "on_memcpy",
    "on_kernel_launch", "on_kernel_complete", "on_advice",
)


def overriders(observers, name: str) -> tuple:
    """Observers that actually implement callback ``name``.

    An observer inheriting :class:`ObserverBase`'s no-op (and not shadowing
    it on the instance) can be skipped entirely, so the runtime's publish
    sites iterate precomputed per-callback tuples instead of calling a
    no-op per subscriber per access -- disabled telemetry costs nothing.
    """
    base = getattr(ObserverBase, name)
    return tuple(
        o for o in observers
        if name in getattr(o, "__dict__", ())
        or getattr(type(o), name, base) is not base
    )


@runtime_checkable
class AccessObserver(Protocol):
    """What a subscriber to the simulated CUDA runtime must implement."""

    def on_alloc(self, alloc: Allocation) -> None:
        """A heap allocation (host, device or managed) was created."""

    def on_free(self, alloc: Allocation) -> None:
        """An allocation was released."""

    def on_access(
        self,
        proc: Processor,
        alloc: Allocation,
        byte_offset: int,
        elem_size: int,
        count: int,
        is_write: bool,
        indices: np.ndarray | None,
        is_rmw: bool,
    ) -> None:
        """``count`` elements of ``elem_size`` bytes were accessed.

        ``indices`` (element indices relative to ``byte_offset``) is given
        for gather/scatter accesses; ``None`` means the contiguous range
        ``[byte_offset, byte_offset + count * elem_size)``.
        """

    def on_memcpy(
        self,
        dst: Allocation,
        dst_off: int,
        src: Allocation,
        src_off: int,
        nbytes: int,
        kind: "cudaMemcpyKind",
    ) -> None:
        """An explicit ``cudaMemcpy`` moved ``nbytes``."""

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:
        """A kernel was launched."""

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:
        """A kernel finished; ``duration`` is its simulated seconds."""

    def on_advice(self, alloc: Allocation, advice: "cudaMemoryAdvise",
                  byte_offset: int, nbytes: int, device_id: int) -> None:
        """``cudaMemAdvise`` was applied to a range."""


class ObserverBase:
    """No-op implementation; subclass and override what you need."""

    def on_alloc(self, alloc: Allocation) -> None:  # noqa: D102
        pass

    def on_free(self, alloc: Allocation) -> None:  # noqa: D102
        pass

    def on_access(self, proc, alloc, byte_offset, elem_size, count,
                  is_write, indices, is_rmw) -> None:  # noqa: D102
        pass

    def on_memcpy(self, dst, dst_off, src, src_off, nbytes, kind) -> None:  # noqa: D102
        pass

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:  # noqa: D102
        pass

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:  # noqa: D102
        pass

    def on_advice(self, alloc, advice, byte_offset, nbytes, device_id) -> None:  # noqa: D102
        pass

"""The simulated CUDA runtime API.

:class:`CudaRuntime` binds a :class:`~repro.memsim.Platform` to the CUDA
API surface the paper's workloads use: the ``cudaMalloc`` family,
``cudaMemcpy``, ``cudaMemAdvise``/``cudaMemPrefetchAsync``, kernel
launches, and host-side ``malloc``.  Every memory operation flows through
:meth:`CudaRuntime.record_access`, which

1. charges the unified-memory driver (faults, migrations, duplications,
   remote traffic -- all with simulated time),
2. notifies registered observers (XPlacer's tracer), and
3. performs the real numpy data movement when allocations are
   materialized.

Simulated time accounting: synchronous operations advance the platform
clock directly; operations issued on a :class:`~repro.memsim.Stream` are
enqueued for overlap, and ``device_synchronize`` folds all streams back
into the clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from ..memsim import (
    PAGE_SIZE,
    Allocation,
    CauseLink,
    Event,
    EventKind,
    MemoryKind,
    Platform,
    Processor,
    Stream,
    processor_from_device_id,
)
from .advice import cudaMemcpyKind, cudaMemoryAdvise
from .errors import CudaError, cudaError_t
from .kernel import KernelContext, LaunchConfig
from .memory import ArrayView, DevicePtr
from .observer import AccessObserver, overriders

__all__ = ["CudaRuntime"]

#: Simulated host memcpy/memset throughput (bytes/second).
_HOST_COPY_BW = 20e9


class CudaRuntime:
    """A simulated CUDA runtime bound to one platform.

    :param platform: the simulated node (devices + link + UM driver).
    :param materialize: whether allocations get real numpy backing.
        Functional/diagnosis runs use ``True``; large timing sweeps use
        ``False`` (footprint mode).
    """

    def __init__(self, platform: Platform, *, materialize: bool = True) -> None:
        self.platform = platform
        self.materialize = materialize
        self.observers: list[AccessObserver] = []
        self.current_proc: Processor = Processor.CPU
        self._accessors: int = 1
        self._kernel_depth = 0
        self._current_kernel = ""
        self._streams: list[Stream] = []
        self.kernel_launches = 0
        # Precomputed per-callback fan-out (see _rebuild_fanout); publish
        # sites iterate these instead of calling no-ops on every subscriber.
        self._rebuild_fanout()

    # ------------------------------------------------------------------ #
    # causal blame (only active while the driver has track_causes set)

    def _blame(self, api: str, alloc: Allocation | None = None) -> None:
        """Fill the driver's blame context before entering it.

        Called on every UM entry point but returns immediately unless the
        driver is tracking causes, so plain runs pay one attribute load
        and a branch.
        """
        um = self.platform.um
        if not um.track_causes:
            return
        site = ""
        if um.blame_sites:
            from ..heatmap.attribution import caller_site
            s = caller_site()
            if s is not None:
                site = s.label
        um.blame.set(site=site, kernel=self._current_kernel, api=api,
                     alloc="" if alloc is None else alloc.label)

    def _transfer_cause(self, dst: Allocation | None,
                        src: Allocation | None) -> CauseLink | None:
        """Cause link for an explicit-transfer event (None when not tracking)."""
        um = self.platform.um
        if not um.track_causes:
            return None
        label = ""
        for alloc in (dst, src):
            if alloc is not None and alloc.label:
                label = alloc.label
                break
        b = um.blame
        return CauseLink(site=b.site, kernel=b.kernel, api="memcpy",
                         alloc=label)

    # ------------------------------------------------------------------ #
    # observers

    def subscribe(self, observer: AccessObserver) -> None:
        """Attach an observer (e.g. the XPlacer tracer); idempotent.

        Publishing always iterates a snapshot of the observer list, so an
        observer may ``unsubscribe`` (itself or another) from inside a
        callback without perturbing the in-flight notification round.
        """
        if observer not in self.observers:
            self.observers.append(observer)
            self._rebuild_fanout()

    def unsubscribe(self, observer: AccessObserver) -> None:
        """Detach a previously attached observer."""
        if observer in self.observers:
            self.observers.remove(observer)
            self._rebuild_fanout()

    def _rebuild_fanout(self) -> None:
        """Recompute the live-subscriber tuple for every callback.

        Subscribers that inherit :class:`~.observer.ObserverBase`'s no-op
        for a callback are dropped from that callback's tuple, so e.g. a
        tracer without telemetry costs nothing on kernel-complete events.
        The tuples are immutable snapshots, preserving the re-entrancy
        guarantee documented on :meth:`subscribe`.
        """
        obs = self.observers
        self._subs_alloc = overriders(obs, "on_alloc")
        self._subs_free = overriders(obs, "on_free")
        self._subs_access = overriders(obs, "on_access")
        self._subs_memcpy = overriders(obs, "on_memcpy")
        self._subs_kernel_launch = overriders(obs, "on_kernel_launch")
        self._subs_kernel_complete = overriders(obs, "on_kernel_complete")
        self._subs_advice = overriders(obs, "on_advice")

    # ------------------------------------------------------------------ #
    # allocation API

    def malloc(self, nbytes: int, label: str = "") -> DevicePtr:
        """``cudaMalloc``: GPU-only memory."""
        return self._allocate(nbytes, MemoryKind.DEVICE, label)

    def malloc_managed(self, nbytes: int, label: str = "") -> DevicePtr:
        """``cudaMallocManaged``: unified memory."""
        return self._allocate(nbytes, MemoryKind.MANAGED, label)

    def host_malloc(self, nbytes: int, label: str = "") -> DevicePtr:
        """Plain host heap allocation (``malloc``/``new``)."""
        return self._allocate(nbytes, MemoryKind.HOST, label)

    def _allocate(self, nbytes: int, kind: MemoryKind, label: str) -> DevicePtr:
        if nbytes <= 0:
            raise CudaError(cudaError_t.cudaErrorInvalidValue,
                            f"allocation size {nbytes}")
        try:
            alloc = self.platform.address_space.allocate(
                nbytes, kind, label=label, materialize=self.materialize,
            )
            self.platform.um.register(alloc)
        except MemoryError as exc:
            raise CudaError(cudaError_t.cudaErrorMemoryAllocation, str(exc)) from exc
        um = self.platform.um
        if um.track_causes and um.blame_sites:
            from ..heatmap.attribution import caller_site
            s = caller_site()
            if s is not None:
                alloc.site = s.label
        for obs in self._subs_alloc:
            obs.on_alloc(alloc)
        return DevicePtr(self, alloc)

    def free(self, ptr: DevicePtr) -> None:
        """``cudaFree``/``free``: release an allocation immediately.

        Observers are notified first (XPlacer parks the shadow block until
        the next diagnostic), then payload and driver state are dropped.
        """
        if ptr.offset != 0:
            raise CudaError(cudaError_t.cudaErrorInvalidDevicePointer,
                            "free of interior pointer")
        for obs in self._subs_free:
            obs.on_free(ptr.alloc)
        self.platform.um.unregister(ptr.alloc)
        self.platform.address_space.free(ptr.alloc.base)

    # ------------------------------------------------------------------ #
    # memcpy / memset

    def memcpy(
        self,
        dst: DevicePtr | np.ndarray | None,
        src: DevicePtr | np.ndarray | None,
        nbytes: int,
        kind: cudaMemcpyKind = cudaMemcpyKind.cudaMemcpyDefault,
        stream: Stream | None = None,
    ) -> cudaError_t:
        """``cudaMemcpy``: explicit data transfer.

        ``dst``/``src`` may be simulated pointers, real numpy arrays
        (standing in for raw host memory), or ``None`` for an anonymous
        host buffer in footprint-only runs.  Transfers touching device or
        managed memory cost link time; host-to-host copies cost host
        memcpy time.  Per the paper's convention, a host-to-device copy is
        traced as a *CPU write* of the destination and a device-to-host
        copy as a *CPU read* of the source.
        """
        if nbytes < 0:
            raise CudaError(cudaError_t.cudaErrorInvalidValue, "negative memcpy size")
        if nbytes == 0:
            return cudaError_t.cudaSuccess

        dst_alloc, dst_off = self._resolve(dst, nbytes, "dst")
        src_alloc, src_off = self._resolve(src, nbytes, "src")
        self._check_direction(kind, dst_alloc, src_alloc)

        self._blame("memcpy")
        cost = 0.0
        # Managed endpoints behave like CPU-side accesses through the UM
        # driver (the copy engine is the CPU here).
        for alloc, off, is_write in (
            (src_alloc, src_off, False), (dst_alloc, dst_off, True),
        ):
            if alloc is not None and alloc.kind is MemoryKind.MANAGED:
                self._blame("memcpy", alloc)
                lo, hi = alloc.page_range(alloc.base + off, nbytes)
                cost += self.platform.um.access(
                    alloc, lo, hi, Processor.CPU,
                    is_write=is_write, nbytes=nbytes,
                ).cost
        crosses_link = (
            (dst_alloc is not None and dst_alloc.kind is MemoryKind.DEVICE)
            or (src_alloc is not None and src_alloc.kind is MemoryKind.DEVICE)
        )
        if crosses_link:
            cost += self.platform.link.transfer_time(nbytes)
        else:
            cost += nbytes / _HOST_COPY_BW

        direction = (f"{'D' if self._kind_of(src_alloc) == 'device' else 'H'}2"
                     f"{'D' if self._kind_of(dst_alloc) == 'device' else 'H'}")
        self.platform.events.record(Event(
            EventKind.TRANSFER, self.platform.clock.now, self.current_proc,
            nbytes=nbytes, cost=cost, detail=direction,
            cause=self._transfer_cause(dst_alloc, src_alloc),
        ))
        if stream is None:
            self.platform.clock.advance(cost)
        else:
            stream.enqueue(cost)

        self._copy_payload(dst, dst_alloc, dst_off, src, src_alloc, src_off, nbytes)

        for obs in self._subs_memcpy:
            obs.on_memcpy(dst_alloc, dst_off, src_alloc, src_off, nbytes, kind)
        return cudaError_t.cudaSuccess

    def memset(self, dst: DevicePtr, value: int, nbytes: int) -> cudaError_t:
        """``cudaMemset``: fill device/managed memory."""
        if nbytes <= 0:
            return cudaError_t.cudaSuccess
        alloc, off = self._resolve(dst, nbytes, "dst")
        assert alloc is not None
        if alloc.kind is MemoryKind.MANAGED:
            self._blame("memset", alloc)
            lo, hi = alloc.page_range(alloc.base + off, nbytes)
            cost = self.platform.um.access(
                alloc, lo, hi, Processor.CPU, is_write=True, nbytes=nbytes,
            ).cost
            self.platform.clock.advance(cost + nbytes / _HOST_COPY_BW)
        else:
            self.platform.clock.advance(self.platform.link.latency + nbytes / _HOST_COPY_BW)
        if alloc.materialized:
            alloc.data[off:off + nbytes] = value
        for obs in self._subs_memcpy:
            obs.on_memcpy(alloc, off, None, 0, nbytes,
                          cudaMemcpyKind.cudaMemcpyHostToDevice
                          if alloc.kind is MemoryKind.DEVICE
                          else cudaMemcpyKind.cudaMemcpyHostToHost)
        return cudaError_t.cudaSuccess

    # ------------------------------------------------------------------ #
    # advice / prefetch

    def mem_advise(
        self,
        ptr: DevicePtr,
        nbytes: int,
        advice: cudaMemoryAdvise,
        device_id: int = 0,
    ) -> cudaError_t:
        """``cudaMemAdvise`` over ``[ptr, ptr + nbytes)``."""
        alloc = ptr.alloc
        if alloc.kind is not MemoryKind.MANAGED:
            raise CudaError(cudaError_t.cudaErrorInvalidValue,
                            "cudaMemAdvise requires managed memory")
        self._blame("advise", alloc)
        lo, hi = alloc.page_range(ptr.addr, nbytes)
        um = self.platform.um
        A = cudaMemoryAdvise
        if advice is A.cudaMemAdviseSetReadMostly:
            um.set_read_mostly(alloc, lo, hi, True)
        elif advice is A.cudaMemAdviseUnsetReadMostly:
            um.set_read_mostly(alloc, lo, hi, False)
        elif advice is A.cudaMemAdviseSetPreferredLocation:
            um.set_preferred_location(alloc, lo, hi, processor_from_device_id(device_id))
        elif advice is A.cudaMemAdviseUnsetPreferredLocation:
            um.set_preferred_location(alloc, lo, hi, None)
        elif advice is A.cudaMemAdviseSetAccessedBy:
            um.set_accessed_by(alloc, lo, hi, processor_from_device_id(device_id), True)
        elif advice is A.cudaMemAdviseUnsetAccessedBy:
            um.set_accessed_by(alloc, lo, hi, processor_from_device_id(device_id), False)
        else:  # pragma: no cover - enum is closed
            raise CudaError(cudaError_t.cudaErrorInvalidValue, str(advice))
        for obs in self._subs_advice:
            obs.on_advice(alloc, advice, ptr.offset, nbytes, device_id)
        return cudaError_t.cudaSuccess

    def mem_prefetch(self, ptr: DevicePtr, nbytes: int, device_id: int = 0,
                     stream: Stream | None = None) -> cudaError_t:
        """``cudaMemPrefetchAsync``."""
        alloc = ptr.alloc
        if alloc.kind is not MemoryKind.MANAGED:
            raise CudaError(cudaError_t.cudaErrorInvalidValue,
                            "prefetch requires managed memory")
        self._blame("prefetch", alloc)
        lo, hi = alloc.page_range(ptr.addr, nbytes)
        cost = self.platform.um.prefetch(alloc, lo, hi, processor_from_device_id(device_id))
        if stream is None:
            self.platform.clock.advance(cost)
        else:
            stream.enqueue(cost)
        return cudaError_t.cudaSuccess

    # ------------------------------------------------------------------ #
    # kernel launch

    def launch(
        self,
        kernel: Callable[..., None],
        grid: int,
        block: int,
        *args: Any,
        name: str | None = None,
        work: int | None = None,
        ops_per_element: float = 1.0,
        stream: Stream | None = None,
    ) -> None:
        """Launch ``kernel<<<grid, block>>>(*args)``.

        :param work: number of element-operations the kernel performs
            (defaults to one per thread); drives simulated compute time.
        :param stream: run asynchronously on this stream (the body still
            executes eagerly -- only the simulated time is deferred).
        """
        config = LaunchConfig(grid, block)
        kname = name or getattr(kernel, "__name__", "kernel")
        self.kernel_launches += 1
        for obs in self._subs_kernel_launch:
            obs.on_kernel_launch(kname, grid, block)

        ctx = KernelContext(self, config, kname)
        mem_cost = 0.0
        prev = (self.current_proc, self._accessors, self._current_kernel)
        self.current_proc, self._accessors = Processor.GPU, grid
        self._current_kernel = kname
        self._kernel_depth += 1
        self._kernel_mem_cost = 0.0
        try:
            kernel(ctx, *args)
            mem_cost = self._kernel_mem_cost
        finally:
            self._kernel_depth -= 1
            self.current_proc, self._accessors, self._current_kernel = prev

        n = work if work is not None else config.threads
        duration = self.platform.gpu.compute_time(n, ops_per_element) + mem_cost
        if stream is None:
            self.platform.clock.advance(duration)
        else:
            stream.enqueue(duration)
        for obs in self._subs_kernel_complete:
            obs.on_kernel_complete(kname, grid, block, duration)

    def device_synchronize(self) -> cudaError_t:
        """``cudaDeviceSynchronize``: drain all streams into the clock."""
        for s in self._streams:
            s.synchronize()
        return cudaError_t.cudaSuccess

    def new_stream(self, name: str = "stream") -> Stream:
        """``cudaStreamCreate``."""
        s = self.platform.new_stream(name)
        self._streams.append(s)
        return s

    # ------------------------------------------------------------------ #
    # host compute

    def cpu_compute(self, elements: int, ops_per_element: float = 1.0) -> None:
        """Charge host-side compute time for ``elements`` work items."""
        self.platform.clock.advance(
            self.platform.cpu.compute_time(elements, ops_per_element)
        )

    @contextmanager
    def accessors(self, n: int) -> Iterator[None]:
        """Temporarily override the concurrent-accessor count.

        Kernels use this around accesses performed by a subset of the grid
        (e.g. the single block that finalizes a reduction) so the fault
        replay model is not charged for the whole launch.
        """
        if n <= 0:
            raise ValueError("accessor count must be positive")
        prev = self._accessors
        self._accessors = n
        try:
            yield
        finally:
            self._accessors = prev

    @contextmanager
    def on_cpu(self) -> Iterator[None]:
        """Force the CPU access context (used by diagnostics inside kernels)."""
        prev = (self.current_proc, self._accessors)
        self.current_proc, self._accessors = Processor.CPU, 1
        try:
            yield
        finally:
            self.current_proc, self._accessors = prev

    # ------------------------------------------------------------------ #
    # the access funnel

    def record_access(
        self,
        alloc: Allocation,
        byte_offset: int,
        elem_size: int,
        count: int,
        *,
        is_write: bool,
        indices: np.ndarray | None,
        is_rmw: bool,
    ) -> None:
        """Charge, simulate and publish one (possibly vectorized) access."""
        proc = self.current_proc
        nbytes = count * elem_size

        self._blame("access", alloc)
        if indices is None:
            out = self.platform.um.access_bytes(
                alloc, byte_offset, nbytes, proc,
                is_write=is_write, accessors=self._accessors,
            )
        else:
            addrs = byte_offset + indices * elem_size
            touched = np.unique(addrs // PAGE_SIZE)
            out = self.platform.um.access(
                alloc, int(touched[0]), int(touched[-1]) + 1, proc,
                is_write=is_write, nbytes=nbytes,
                accessors=self._accessors, pages=touched,
            )
        if self._kernel_depth > 0:
            self._kernel_mem_cost += out.cost
        else:
            self.platform.clock.advance(out.cost)

        # A read-modify-write is published once with is_rmw=True; observers
        # are responsible for both legs (read of the old value, then write).
        for obs in self._subs_access:
            obs.on_access(proc, alloc, byte_offset, elem_size, count,
                          is_write, indices, is_rmw)

    # ------------------------------------------------------------------ #
    # helpers

    def _resolve(
        self, end: DevicePtr | np.ndarray | None, nbytes: int, which: str
    ) -> tuple[Allocation | None, int]:
        if end is None:
            if self.materialize:
                raise CudaError(cudaError_t.cudaErrorInvalidValue,
                                f"memcpy {which} is None in a materialized run")
            return None, 0
        if isinstance(end, DevicePtr):
            if end.offset + nbytes > end.alloc.size:
                raise CudaError(cudaError_t.cudaErrorInvalidValue,
                                f"memcpy {which} range exceeds allocation")
            return end.alloc, end.offset
        if isinstance(end, np.ndarray):
            if end.nbytes < nbytes:
                raise CudaError(cudaError_t.cudaErrorInvalidValue,
                                f"memcpy {which} host buffer too small")
            return None, 0
        raise CudaError(cudaError_t.cudaErrorInvalidValue,
                        f"memcpy {which} must be DevicePtr or ndarray")

    @staticmethod
    def _kind_of(alloc: Allocation | None) -> str:
        if alloc is None or alloc.kind is MemoryKind.HOST:
            return "host"
        return "device"

    def _check_direction(self, kind: cudaMemcpyKind,
                         dst: Allocation | None, src: Allocation | None) -> None:
        if kind is cudaMemcpyKind.cudaMemcpyDefault:
            return
        expect = {
            cudaMemcpyKind.cudaMemcpyHostToHost: ("host", "host"),
            cudaMemcpyKind.cudaMemcpyHostToDevice: ("device", "host"),
            cudaMemcpyKind.cudaMemcpyDeviceToHost: ("host", "device"),
            cudaMemcpyKind.cudaMemcpyDeviceToDevice: ("device", "device"),
        }[kind]
        # Managed memory is legal on either side of any direction.
        actual = (self._kind_of(dst), self._kind_of(src))
        managed = (
            (dst is not None and dst.kind is MemoryKind.MANAGED),
            (src is not None and src.kind is MemoryKind.MANAGED),
        )
        for got, want, is_managed in zip(actual, expect, managed):
            if not is_managed and got != want:
                raise CudaError(cudaError_t.cudaErrorInvalidMemcpyDirection,
                                f"{kind.name} with {actual[1]}->{actual[0]} endpoints")

    def _copy_payload(
        self,
        dst: DevicePtr | np.ndarray, dst_alloc: Allocation | None, dst_off: int,
        src: DevicePtr | np.ndarray, src_alloc: Allocation | None, src_off: int,
        nbytes: int,
    ) -> None:
        src_bytes: np.ndarray | None
        if src_alloc is not None:
            src_bytes = (src_alloc.data[src_off:src_off + nbytes]
                         if src_alloc.materialized else None)
        elif src is not None:
            src_bytes = np.ascontiguousarray(src).view(np.uint8).ravel()[:nbytes]
        else:
            src_bytes = None
        if dst_alloc is not None:
            if dst_alloc.materialized and src_bytes is not None:
                dst_alloc.data[dst_off:dst_off + nbytes] = src_bytes
        elif dst is not None and src_bytes is not None:
            flat = np.asarray(dst).view(np.uint8).ravel()
            flat[:nbytes] = src_bytes

"""Pointers and typed array views over simulated memory.

A :class:`DevicePtr` is what the simulated ``cudaMalloc`` family returns:
an address plus its backing :class:`~repro.memsim.Allocation`.  Workloads
access memory through :class:`ArrayView`, a typed window that routes every
read/write through the runtime -- which charges the unified-memory driver,
notifies observers (the XPlacer tracer), and touches the real numpy backing
when the allocation is materialized.

Views support contiguous ranges and gather/scatter index arrays; both are
vectorized (one runtime call per operation, numpy fancy indexing for the
data), per the HPC guides' "no per-element Python loops on hot paths" rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..memsim import Allocation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import CudaRuntime

__all__ = ["DevicePtr", "ArrayView"]


@dataclass(frozen=True)
class DevicePtr:
    """A pointer into a simulated allocation."""

    runtime: "CudaRuntime"
    alloc: Allocation
    offset: int = 0

    @property
    def addr(self) -> int:
        """The virtual address this pointer holds."""
        return self.alloc.base + self.offset

    def __add__(self, nbytes: int) -> "DevicePtr":
        if not 0 <= self.offset + nbytes <= self.alloc.size:
            raise ValueError("pointer arithmetic escapes the allocation")
        return DevicePtr(self.runtime, self.alloc, self.offset + nbytes)

    def typed(self, dtype: Any, count: int | None = None, *, offset_bytes: int = 0) -> "ArrayView":
        """A typed :class:`ArrayView` of ``count`` elements at this pointer."""
        dt = np.dtype(dtype)
        start = self.offset + offset_bytes
        avail = (self.alloc.size - start) // dt.itemsize
        if count is None:
            count = avail
        if count < 0 or count > avail:
            raise ValueError(
                f"view of {count} x {dt} does not fit allocation "
                f"{self.alloc.label or hex(self.alloc.base)}"
            )
        return ArrayView(self.runtime, self.alloc, start, dt, count)


class ArrayView:
    """A typed, traced window onto an allocation.

    All data methods accept half-open element ranges.  In footprint-only
    allocations (no backing buffer) the access is still fully simulated
    and traced, but ``read`` returns ``None`` and ``write`` ignores its
    values -- workloads test ``view.functional`` or the return value.
    """

    __slots__ = ("runtime", "alloc", "byte_offset", "dtype", "length", "_raw")

    def __init__(self, runtime: "CudaRuntime", alloc: Allocation,
                 byte_offset: int, dtype: np.dtype, length: int) -> None:
        self.runtime = runtime
        self.alloc = alloc
        self.byte_offset = byte_offset
        self.dtype = np.dtype(dtype)
        self.length = length
        self._raw: np.ndarray | None = None

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArrayView({self.alloc.label or hex(self.alloc.base)}"
                f"+{self.byte_offset}, {self.dtype}, n={self.length})")

    @property
    def functional(self) -> bool:
        """Whether real data backs this view."""
        return self.alloc.materialized

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def addr(self) -> int:
        """Address of element 0."""
        return self.alloc.base + self.byte_offset

    def subview(self, lo: int, hi: int | None = None) -> "ArrayView":
        """A narrower view over elements ``[lo, hi)``."""
        lo, hi = self._range(lo, hi)
        return ArrayView(self.runtime, self.alloc,
                         self.byte_offset + lo * self.itemsize,
                         self.dtype, hi - lo)

    # ------------------------------------------------------------------ #
    # raw (untraced) access -- for test setup and result inspection only

    @property
    def raw(self) -> np.ndarray:
        """Direct numpy view, bypassing tracing and the UM driver.

        Built once per view: the backing buffer never moves, so the slice +
        ``.view`` dance (which dominated traced read/write cost) only runs
        on first use.  A freed allocation drops its buffer, so the cache is
        bypassed then and ``Allocation.view`` raises as before.
        """
        raw = self._raw
        if raw is None or self.alloc.data is None:
            raw = self._raw = self.alloc.view(
                self.dtype, offset=self.byte_offset, count=self.length)
        return raw

    # ------------------------------------------------------------------ #
    # traced access

    def read(self, lo: int = 0, hi: int | None = None) -> np.ndarray | None:
        """Read elements ``[lo, hi)``; ``None`` when footprint-only."""
        lo, hi = self._range(lo, hi)
        if hi == lo:
            return self.raw[lo:hi] if self.functional else None
        self._record(lo, hi, is_write=False)
        return self.raw[lo:hi].copy() if self.functional else None

    def write(self, lo: int, values: Any = None, hi: int | None = None) -> None:
        """Write elements ``[lo, hi)``.

        When ``hi`` is omitted it is inferred from the shape of ``values``
        (scalar values require an explicit ``hi``).
        """
        if hi is None:
            n = np.ndim(values) and len(np.atleast_1d(values))
            if not n:
                raise ValueError("write of a scalar needs an explicit hi")
            hi = lo + n
        lo, hi = self._range(lo, hi)
        if hi == lo:
            return
        self._record(lo, hi, is_write=True)
        if self.functional and values is not None:
            self.raw[lo:hi] = values

    def rmw(self, lo: int, hi: int | None = None, fn: Any = None) -> None:
        """Read-modify-write ``[lo, hi)`` (e.g. ``+=``); traced as RMW."""
        lo, hi = self._range(lo, hi if hi is not None else lo + 1)
        self._record(lo, hi, is_write=True, is_rmw=True)
        if self.functional and fn is not None:
            self.raw[lo:hi] = fn(self.raw[lo:hi])

    def gather(self, indices: np.ndarray) -> np.ndarray | None:
        """Read at ``indices`` (element granularity, traced individually)."""
        idx = self._indices(indices)
        if len(idx) == 0:
            return np.empty(0, self.dtype) if self.functional else None
        self._record_indexed(idx, is_write=False)
        return self.raw[idx].copy() if self.functional else None

    def scatter(self, indices: np.ndarray, values: Any = None) -> None:
        """Write at ``indices``."""
        idx = self._indices(indices)
        if len(idx) == 0:
            return
        self._record_indexed(idx, is_write=True)
        if self.functional and values is not None:
            self.raw[idx] = values

    def fill(self, value: Any, lo: int = 0, hi: int | None = None) -> None:
        """Write a constant over ``[lo, hi)`` (a traced memset)."""
        lo, hi = self._range(lo, hi)
        if hi == lo:
            return
        self._record(lo, hi, is_write=True)
        if self.functional:
            self.raw[lo:hi] = value

    # ------------------------------------------------------------------ #
    # internals

    def _range(self, lo: int, hi: int | None) -> tuple[int, int]:
        if hi is None:
            hi = self.length
        if not 0 <= lo <= hi <= self.length:
            raise IndexError(
                f"element range [{lo},{hi}) out of bounds for view of {self.length}"
            )
        return lo, hi

    def _indices(self, indices: Any) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if len(idx) and (idx.min() < 0 or idx.max() >= self.length):
            raise IndexError("gather/scatter index out of bounds")
        return idx

    def _record(self, lo: int, hi: int, *, is_write: bool, is_rmw: bool = False) -> None:
        self.runtime.record_access(
            self.alloc,
            self.byte_offset + lo * self.itemsize,
            self.itemsize,
            hi - lo,
            is_write=is_write,
            indices=None,
            is_rmw=is_rmw,
        )

    def _record_indexed(self, idx: np.ndarray, *, is_write: bool) -> None:
        self.runtime.record_access(
            self.alloc,
            self.byte_offset,
            self.itemsize,
            len(idx),
            is_write=is_write,
            indices=idx,
            is_rmw=False,
        )

"""Kernel launch machinery for the simulated GPU.

Kernels are Python callables with signature ``kernel(ctx, *args)`` where
``ctx`` is a :class:`KernelContext`.  The body expresses the *whole grid's*
work with vectorized operations on :class:`~repro.cudart.memory.ArrayView`
objects -- data-parallel semantics without a per-thread Python loop.  (The
mini-CUDA interpreter in :mod:`repro.interp` provides true per-thread
execution for instrumented source programs.)

While a kernel body runs, the owning :class:`~repro.cudart.api.CudaRuntime`
switches its access context to the GPU, so every view access is attributed
to the GPU, charged GPU-side fault costs (with the grid size as the replay
accessor count), and traced as a GPU access by XPlacer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import CudaRuntime

__all__ = ["KernelContext", "LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """The ``<<<grid, block>>>`` pair of a kernel launch."""

    grid: int
    block: int

    def __post_init__(self) -> None:
        if self.grid <= 0 or self.block <= 0:
            raise ValueError("grid and block must be positive")

    @property
    def threads(self) -> int:
        """Total threads in the launch."""
        return self.grid * self.block


@dataclass
class KernelContext:
    """Execution context handed to a kernel body."""

    runtime: "CudaRuntime"
    config: LaunchConfig
    name: str

    @property
    def grid(self) -> int:
        """Number of thread blocks."""
        return self.config.grid

    @property
    def block(self) -> int:
        """Threads per block."""
        return self.config.block

    @property
    def threads(self) -> int:
        """Total threads."""
        return self.config.threads

    @property
    def functional(self) -> bool:
        """Whether this run materializes data (vs footprint/timing only)."""
        return self.runtime.materialize


KernelFn = Callable[..., None]

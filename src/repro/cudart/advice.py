"""``cudaMemAdvise`` advice enum (paper §II-B)."""

from __future__ import annotations

import enum

__all__ = ["cudaMemoryAdvise", "cudaMemcpyKind"]


class cudaMemoryAdvise(enum.Enum):
    """The six advice values accepted by ``cudaMemAdvise``."""

    cudaMemAdviseSetReadMostly = 1
    cudaMemAdviseUnsetReadMostly = 2
    cudaMemAdviseSetPreferredLocation = 3
    cudaMemAdviseUnsetPreferredLocation = 4
    cudaMemAdviseSetAccessedBy = 5
    cudaMemAdviseUnsetAccessedBy = 6


class cudaMemcpyKind(enum.Enum):
    """Direction argument of ``cudaMemcpy``."""

    cudaMemcpyHostToHost = 0
    cudaMemcpyHostToDevice = 1
    cudaMemcpyDeviceToHost = 2
    cudaMemcpyDeviceToDevice = 3
    cudaMemcpyDefault = 4

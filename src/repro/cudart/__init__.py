"""Simulated CUDA runtime API over :mod:`repro.memsim`.

The names mirror the CUDA runtime the paper instruments:
``CudaRuntime.malloc`` is ``cudaMalloc``, ``malloc_managed`` is
``cudaMallocManaged``, ``memcpy`` is ``cudaMemcpy``, ``mem_advise`` is
``cudaMemAdvise``, and ``launch`` is the ``<<<grid, block>>>`` syntax.
"""

from .advice import cudaMemcpyKind, cudaMemoryAdvise
from .api import CudaRuntime
from .cupti import KernelProfile, KernelProfiler
from .errors import CudaError, cudaError_t
from .kernel import KernelContext, LaunchConfig
from .memory import ArrayView, DevicePtr
from .observer import AccessObserver, ObserverBase

__all__ = [
    "cudaMemcpyKind",
    "cudaMemoryAdvise",
    "CudaRuntime",
    "KernelProfile",
    "KernelProfiler",
    "CudaError",
    "cudaError_t",
    "KernelContext",
    "LaunchConfig",
    "ArrayView",
    "DevicePtr",
    "AccessObserver",
    "ObserverBase",
]

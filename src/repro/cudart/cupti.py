"""A CUPTI-style per-kernel profiler.

The paper's §III-B and conclusion suggest wrapping kernel launches "to
record data before and after the launch of a CUDA kernel, such as the
number of page faults reported by the operating system or CUPTI", and
name per-kernel fault attribution as the natural next step for the
runtime.  :class:`KernelProfiler` implements exactly that against the
simulated driver: it snapshots the unified-memory event counters around
every launch and attributes the delta -- fault groups, migrated pages,
remote traffic, evictions, memory stall time -- to that kernel instance.
"""

from __future__ import annotations

import io
from collections import defaultdict
from dataclasses import dataclass

from ..memsim import EventKind, Platform

from .observer import ObserverBase

__all__ = ["KernelProfile", "KernelProfiler"]


@dataclass(frozen=True)
class KernelProfile:
    """Memory-system activity attributed to one kernel launch."""

    name: str
    launch_index: int
    grid: int
    block: int
    duration: float          #: simulated seconds, compute + memory stalls
    fault_groups: int
    migrated_pages: int
    duplicated_pages: int
    remote_accesses: int
    evicted_pages: int
    memory_time: float       #: simulated seconds of driver-charged time

    @property
    def memory_fraction(self) -> float:
        """Share of the kernel's time spent in the memory system."""
        return self.memory_time / self.duration if self.duration > 0 else 0.0


class KernelProfiler(ObserverBase):
    """Attributes driver events to kernel launches (CUPTI stand-in)."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.profiles: list[KernelProfile] = []
        self._pending: list[tuple[str, int, int, dict]] = []
        self._launches = 0

    # ------------------------------------------------------------------ #
    # observer callbacks

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:  # noqa: D102
        self._pending.append((name, grid, block, self._snapshot()))

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:  # noqa: D102
        if not self._pending:
            return
        # Completions may arrive out of launch order (stream overlap);
        # match the oldest pending launch with the same identity, falling
        # back to plain FIFO for anonymous/renamed kernels.
        for i, (pname, pgrid, pblock, _) in enumerate(self._pending):
            if (pname, pgrid, pblock) == (name, grid, block):
                break
        else:
            i = 0
        lname, lgrid, lblock, before = self._pending.pop(i)
        after = self._snapshot()
        delta = {k: after[k] - before[k] for k in after}
        self._launches += 1
        self.profiles.append(KernelProfile(
            name=lname,
            launch_index=self._launches,
            grid=lgrid,
            block=lblock,
            duration=duration,
            fault_groups=int(delta["fault_groups"]),
            migrated_pages=int(delta["migrated_pages"]),
            duplicated_pages=int(delta["duplicated_pages"]),
            remote_accesses=int(delta["remote_accesses"]),
            evicted_pages=int(delta["evicted_pages"]),
            memory_time=delta["memory_time"],
        ))

    def _snapshot(self) -> dict:
        log = self.platform.events
        return {
            "fault_groups": log.fault_groups,
            "migrated_pages": log.migrated_pages,
            "duplicated_pages": log.pages[EventKind.DUPLICATION],
            "remote_accesses": log.counts[EventKind.REMOTE_ACCESS],
            "evicted_pages": log.pages[EventKind.EVICTION],
            "memory_time": log.total_cost(),
        }

    # ------------------------------------------------------------------ #
    # aggregation

    def by_kernel(self) -> dict[str, dict]:
        """Totals per kernel name (like a CUPTI summary view)."""
        agg: dict[str, dict] = defaultdict(lambda: {
            "launches": 0, "fault_groups": 0, "migrated_pages": 0,
            "duration": 0.0, "memory_time": 0.0,
        })
        for p in self.profiles:
            a = agg[p.name]
            a["launches"] += 1
            a["fault_groups"] += p.fault_groups
            a["migrated_pages"] += p.migrated_pages
            a["duration"] += p.duration
            a["memory_time"] += p.memory_time
        return dict(agg)

    def hotspots(self, n: int = 5) -> list[tuple[str, dict]]:
        """Kernel names ranked by attributed memory-system time."""
        return sorted(self.by_kernel().items(),
                      key=lambda kv: kv[1]["memory_time"], reverse=True)[:n]

    def report(self, top: int = 10) -> str:
        """Human-readable hotspot table ("which kernels fault and why")."""
        out = io.StringIO()
        out.write(f"{'kernel':28s}{'launches':>9s}{'faults':>8s}"
                  f"{'migrated':>9s}{'time':>11s}{'mem%':>6s}\n")
        for name, a in self.hotspots(top):
            mem_pct = (100.0 * a["memory_time"] / a["duration"]
                       if a["duration"] else 0.0)
            out.write(f"{name:28s}{a['launches']:9d}{a['fault_groups']:8d}"
                      f"{a['migrated_pages']:9d}"
                      f"{a['duration'] * 1e3:9.2f}ms{mem_pct:5.0f}%\n")
        return out.getvalue()

    def reset(self) -> None:
        """Drop collected profiles, pending snapshots and the launch count.

        Clearing ``_pending`` matters when resetting mid-launch: a stale
        snapshot would otherwise be matched against a later completion and
        leak pre-reset deltas into the next profile.
        """
        self.profiles.clear()
        self._pending.clear()
        self._launches = 0

"""CUDA-style error codes and exceptions for the simulated runtime.

The real CUDA runtime reports failures through ``cudaError_t`` return
codes.  The simulated API keeps the enum for fidelity (wrappers like
``trcMalloc`` return it, matching the paper's Table I declarations) but
raises :class:`CudaError` for conditions that would crash or corrupt a
real program, so tests can assert on them directly.
"""

from __future__ import annotations

import enum

__all__ = ["cudaError_t", "CudaError"]


class cudaError_t(enum.Enum):
    """Subset of CUDA runtime error codes used by the simulator."""

    cudaSuccess = 0
    cudaErrorMemoryAllocation = 2
    cudaErrorInvalidValue = 11
    cudaErrorInvalidDevicePointer = 17
    cudaErrorInvalidMemcpyDirection = 21


class CudaError(RuntimeError):
    """A simulated CUDA runtime failure."""

    def __init__(self, code: cudaError_t, message: str = "") -> None:
        self.code = code
        super().__init__(f"{code.name}: {message}" if message else code.name)

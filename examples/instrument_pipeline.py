#!/usr/bin/env python3
"""The full XPlacer tool pipeline on a mini-CUDA source program (Fig 1).

This is the paper's actual workflow, end to end:

1. a C/CUDA source file includes the XPlacer header and ``xpl`` pragmas;
2. the instrumenter (the ROSE-plugin stand-in) rewrites heap accesses
   into ``traceR``/``traceW``/``traceRW`` calls, redirects CUDA calls to
   the ``trc*`` wrappers, and expands the diagnostic pragma;
3. the instrumented source executes against the simulated CUDA runtime,
   with the runtime library recording shadow memory;
4. the embedded diagnostic prints Fig 4-style output.

Run:  python examples/instrument_pipeline.py
"""

from repro.instrument import instrument_source
from repro.interp import run_program

SOURCE = r"""
#include "xplacer.h"

#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** ptr, size_t size);

#pragma xpl replace kernel-launch
void traceKernelLaunch(int grd, int blk, int shmem, int stream, ...);

struct Field {
    double* values;
    int* flags;
};

__global__ void relax(double* v, int n) {
    int i = threadIdx.x + blockIdx.x * blockDim.x;
    if (i > 0 && i < n - 1) {
        v[i] = (v[i - 1] + v[i + 1]) * 0.5;
    }
}

int main() {
    struct Field f;
    cudaMallocManaged((void**)&f.values, 64 * sizeof(double));
    cudaMallocManaged((void**)&f.flags, 64 * sizeof(int));
    struct Field* fp = &f;

    for (int i = 0; i < 64; i++) {
        fp->values[i] = i * 1.0;
        fp->flags[i] = 0;
    }

    for (int step = 0; step < 3; step++) {
        relax<<<2, 32>>>(f.values, 64);
        fp->flags[step] = 1;
    }

    double sum = 0.0;
    for (int i = 0; i < 64; i++) {
        sum += fp->values[i];
    }
    printf("checksum=%g\n", sum);

#pragma xpl diagnostic tracePrint(out; fp)
    return 0;
}
"""

print("=== 1. instrumented source (what the ROSE pass emits) ===")
instrumented, info = instrument_source(SOURCE)
print(instrumented)
print(f"--- {sum(info.wrapped.values())} accesses wrapped "
      f"({dict(info.wrapped)}), replacements: {info.replacements}\n")

print("=== 2. executing on the simulated platform ===")
interp = run_program(SOURCE)
print(interp.stdout)

print("=== 3. what the runtime recorded ===")
print(f"kernel launches: {[(k.name, k.grid, k.block) for k in interp.tracer.kernels]}")
print(f"simulated time: {interp.platform.clock.now * 1e6:.1f} us")
print(f"driver events:  {interp.platform.events.summary()}")

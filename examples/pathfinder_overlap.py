#!/usr/bin/env python3
"""Pathfinder: detecting wasted transfer and overlapping it away (§IV-C).

XPlacer's per-iteration analysis shows that each kernel reads only
``100/N %`` of the upfront-transferred ``gpuWall`` (Fig 10, Table II).
The optimization transfers each slab just in time on a copy stream,
overlapping the previous kernel: up to ~1.13x on the PCIe node, slower
on the NVLink node (Fig 11).

Run:  python examples/pathfinder_overlap.py
"""

from repro.analysis import AntiPattern
from repro.workloads import make_session
from repro.workloads.rodinia import OverlappedPathfinder, Pathfinder

# ----------------------------------------------------------------------- #
# Diagnose the access pattern at map size (cf. Fig 10).

session = make_session("intel-pascal", trace=True, materialize=True)
pf = Pathfinder(session, cols=2048, rows=26, pyramid_height=5,
                diagnose_each_iteration=True)
run = pf.run()

print("=== gpuWall reads per iteration (cf. Fig 10; '#' = touched) ===")
for it in (1, 2, 5):
    amap = run.diagnoses[it - 1].result.named("gpuWall").maps["gpu_read"]
    pct = 100 * amap.touched / amap.words
    print(f"\niteration {it} ({pct:.0f}% of the array):")
    print(amap.to_ascii(128))

first = run.diagnoses[0]
wasted = [f for f in first.findings
          if f.pattern is AntiPattern.UNNECESSARY_TRANSFER_IN]
print("\nfirst-iteration finding:", wasted[0] if wasted else "none")

# ----------------------------------------------------------------------- #
# Time baseline vs overlapped transfer (cf. Fig 11).

print("\n=== overlap speedups, cols=1M, pyramid height 20 (cf. Fig 11) ===")
for platform in ("intel-pascal", "power9-volta"):
    for rows in (200, 600, 1000):
        s1 = make_session(platform, trace=False, materialize=False)
        base = Pathfinder(s1, cols=1_000_000, rows=rows,
                          pyramid_height=20).run()
        s2 = make_session(platform, trace=False, materialize=False)
        opt = OverlappedPathfinder(s2, cols=1_000_000, rows=rows,
                                   pyramid_height=20).run()
        print(f"{platform:14s} rows={rows:5d}: "
              f"{base.sim_time * 1e3:7.1f} ms -> {opt.sim_time * 1e3:7.1f} ms "
              f"({base.sim_time / opt.sim_time:5.3f}x)")

print("\nOverlap hides the kernels under the (dominant) PCIe transfer; on "
      "NVLink the transfer is cheap and the per-chunk stream overhead "
      "makes the revised version slower -- the paper's exact conclusion.")

#!/usr/bin/env python3
"""Smith-Waterman: from diagnosis to the rotated-matrix optimization (§IV-B).

XPlacer reveals two things about the baseline implementation:

* the CPU zeroes the *entire* score matrix although only the boundary
  zeroes are ever read (Fig 7);
* each wavefront iteration touches one cell per row -- scattered across
  pages, so per-iteration access density is tiny (Fig 8) and large inputs
  drown in page-fault groups.

The fix initializes boundaries on the fly and rotates the matrix by 45
degrees so each iteration reads/writes contiguous memory; the speedup
explodes once the input stops fitting in GPU memory (Fig 9).

Run:  python examples/smithwaterman_optimization.py
"""

from repro.analysis import AntiPattern, diagnose
from repro.evalx.figures import sw_scaled
from repro.workloads import make_session
from repro.workloads.smithwaterman import RotatedSmithWaterman, SmithWaterman

# ----------------------------------------------------------------------- #
# Diagnose at the paper's figure size (20x10).

session = make_session("intel-pascal", trace=True, materialize=True)
sw = SmithWaterman(session, 20, 10)
sw.run()
diag = diagnose(session.tracer, sw.descriptors())
h = diag.result.named("H")

print("=== H matrix after a full run (cf. Fig 7) ===")
print("written by the CPU during initialization:")
print(h.maps["cpu_write"].to_ascii(sw.geom.width))
print("\ninitial (CPU-origin) values the GPU actually read -- the boundary:")
print(h.maps["gpu_read_cpu_origin"].to_ascii(sw.geom.width))

# Per-iteration diagnosis shows the sparse wavefront (cf. Fig 8).
session2 = make_session("intel-pascal", trace=True, materialize=True)
sw2 = SmithWaterman(session2, 20, 10, diagnose_each_iteration=True)
run2 = sw2.run()
it8 = run2.diagnoses[6]  # wavefront k = 8
print("\n=== GPU writes in iteration 8 (cf. Fig 8a) ===")
print(it8.result.named("H").maps["gpu_write"].to_ascii(sw2.geom.width))
low = [f for f in it8.findings if f.pattern is AntiPattern.LOW_ACCESS_DENSITY]
print(f"\nlow-access-density findings in iteration 8: "
      f"{[f.name for f in low]}")

# ----------------------------------------------------------------------- #
# Time baseline vs rotated across sizes (cf. Fig 9).

sizes, gpu_memory = sw_scaled(20)  # paper sizes / 20, GPU memory / 400
print(f"\n=== speedups, paper sizes / 20, GPU memory {gpu_memory >> 20} MB "
      f"(cf. Fig 9) ===")
for platform in ("intel-pascal", "power9-volta"):
    preferred = platform == "intel-pascal"
    for n in sizes:
        s1 = make_session(platform, trace=False, materialize=False,
                          gpu_memory_bytes=gpu_memory)
        base = SmithWaterman(s1, n).run()
        s2 = make_session(platform, trace=False, materialize=False,
                          gpu_memory_bytes=gpu_memory)
        opt = RotatedSmithWaterman(s2, n, set_preferred_gpu=preferred).run()
        tag = "  <-- exceeds GPU memory" if n == sizes[-1] else ""
        print(f"{platform:14s} n={n:5d}: {base.sim_time * 1e3:9.1f} ms -> "
              f"{opt.sim_time * 1e3:8.1f} ms "
              f"({base.sim_time / opt.sim_time:5.2f}x){tag}")

#!/usr/bin/env python3
"""Closing the loop: from diagnosis to automatic placement (extension).

The paper leaves fixing the diagnosed anti-patterns to "skilled
programmers" and points at rule-based placement tools (RTHMS) as related
work.  This example shows the reproduction's extension: the placement
advisor turns one diagnosis epoch into a concrete ``cudaMemAdvise`` plan,
applies it, and the CUPTI-style profiler confirms the fault storms are
gone -- no source changes required.

Run:  python examples/auto_placement.py
"""

from repro.analysis import apply_plan, diagnose, recommend_placement
from repro.cudart import KernelProfiler
from repro.workloads import make_session
from repro.workloads.lulesh import Lulesh

SIZE, WARMUP, MEASURE = 16, 2, 12

session = make_session("intel-pascal", trace=True, materialize=False)
profiler = KernelProfiler(session.platform)
session.runtime.subscribe(profiler)

app = Lulesh(session, SIZE)
app.run(WARMUP)

print("=== per-kernel fault profile, untreated (CUPTI-style) ===")
print(profiler.report())

# One diagnosis epoch -> a cudaMemAdvise plan.
diag = diagnose(session.tracer)
plan = recommend_placement(diag)
print("=== recommended placement plan ===")
print(plan.summary())

# Measure before/after with tracing detached (pure runtime behaviour).
session.tracer.detach()
profiler.reset()
t0 = session.platform.clock.now
app.run(MEASURE)
untreated = session.platform.clock.now - t0
untreated_faults = sum(p.fault_groups for p in profiler.profiles)

apply_plan(session.runtime, plan)
profiler.reset()
t0 = session.platform.clock.now
app.run(MEASURE)
treated = session.platform.clock.now - t0
treated_faults = sum(p.fault_groups for p in profiler.profiles)

print(f"untreated: {untreated * 1e3:7.2f} ms, "
      f"{untreated_faults} kernel fault groups")
print(f"treated:   {treated * 1e3:7.2f} ms, "
      f"{treated_faults} kernel fault groups")
print(f"automatic speedup: {untreated / treated:.2f}x "
      f"(no source changes; cf. the paper's hand-applied 2.75x-3.7x)")
assert treated < untreated

#!/usr/bin/env python3
"""Quickstart: trace a toy CUDA program and diagnose its anti-patterns.

The scenario is the paper's motivating one in miniature: a managed buffer
that the CPU initializes, the GPU transforms, and the CPU reads back and
re-touches every "timestep" -- alternating CPU/GPU accesses.  XPlacer's
shadow memory records every access and the diagnostic pass both prints
the Fig 4-style counters and names the anti-pattern with remedies.

Run:  python examples/quickstart.py
"""

import sys

import numpy as np

from repro.analysis import diagnose
from repro.workloads import make_session

# 1. Build a simulated heterogeneous node (Intel CPU + Pascal GPU over
#    PCIe -- the paper's first testbed) with an attached XPlacer tracer.
session = make_session("intel-pascal", trace=True, materialize=True)
rt, tracer = session.runtime, session.tracer

# 2. Allocate unified memory, like cudaMallocManaged.
vec = rt.malloc_managed(4096, label="vec").typed(np.float32)

# 3. The CPU initializes everything (first touch on the host).
vec.write(0, np.arange(len(vec), dtype=np.float32))


# 4. A GPU kernel scales the vector in place.
def scale(ctx, data, factor):
    values = data.read(0, len(data))
    data.write(0, values * factor)


for step in range(4):
    rt.launch(scale, 4, 256, vec, np.float32(2.0), name="scale")
    # ... and the CPU "post-processes" a few elements each step: the
    # alternating-access anti-pattern.
    head = vec.read(0, 16)
    vec.write(0, head * 0.5)

# 5. Diagnose, exactly where a `#pragma xpl diagnostic` would sit.
diag = diagnose(tracer, out=sys.stdout)

print("\nSimulated time:", f"{session.sim_time * 1e6:.1f} us")
print("Driver events:", session.platform.events.summary())

report = diag.result.named("vec")
print(f"\nvec: CPU wrote {report.counts.cpu_written} words, "
      f"GPU wrote {report.counts.gpu_written}, "
      f"alternating words: {report.alternating}")
assert diag.findings, "expected the alternating-access finding"

#!/usr/bin/env python3
"""The paper's flagship case study: diagnosing and fixing LULESH (§IV-A).

Workflow, exactly as §III-D describes:

1. run the instrumented application with per-timestep diagnostics;
2. look for red flags in the output -- the domain object's "18 elements
   with alternating accesses";
3. apply a remedy (here: both the one-line ``SetReadMostly`` hint and the
   duplicate-domain restructuring) and compare performance on all three
   simulated testbeds.

Run:  python examples/lulesh_diagnosis.py
"""

from repro.runtime import format_text
from repro.workloads import make_session
from repro.workloads.lulesh import VARIANTS, Lulesh

# ----------------------------------------------------------------------- #
# Step 1-2: diagnose at small size (the paper diagnoses, then times big).

session = make_session("intel-pascal", trace=True, materialize=True)
app = Lulesh(session, size=8, diagnose_each_step=True)
run = app.run(2)

second_iter = run.diagnoses[1]
dom = second_iter.result.named("dom")
print("=== diagnostic for the domain object, iteration 2 (cf. Fig 4) ===")
print(format_text(type(second_iter.result)(
    epoch=second_iter.result.epoch, reports=[dom])))
print("findings:")
for f in second_iter.findings:
    print(f"  {f}")

assert dom.alternating == 18, "the paper's 18 alternating elements"

# ----------------------------------------------------------------------- #
# Step 3: try the remedies and time them (cf. Fig 6).

SIZE, ITERS = 32, 8
print(f"\n=== remedy speedups at size {SIZE} (cf. Fig 6) ===")
print(f"{'platform':14s}" + "".join(f"{v:>14s}" for v in VARIANTS[1:]))
for platform in ("intel-pascal", "intel-volta", "power9-volta"):
    times = {}
    for variant in VARIANTS:
        s = make_session(platform, trace=False, materialize=False)
        times[variant] = Lulesh(s, SIZE, variant=variant).run(ITERS).sim_time
    base = times["baseline"]
    row = "".join(f"{base / times[v]:13.2f}x" for v in VARIANTS[1:])
    print(f"{platform:14s}{row}")

print("\nReading the table: on the PCIe (Intel) nodes the hints and the "
      "duplicate-domain fix give large speedups; on the NVLink (Power9) "
      "node coherent mappings already absorb the page-fault storm, so "
      "duplication is a wash and ReadMostly actually hurts -- the paper's "
      "platform-dependent conclusion.")

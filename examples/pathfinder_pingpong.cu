// Pathfinder-style DP with the classic ping-pong anti-pattern: each
// kernel writes dst on the GPU, then the host immediately copies dst
// back into src on the CPU, so both frontier arrays bounce between
// processors every iteration.  The scenario behind the annotated
// repro-debug transcript in EXPERIMENTS.md.
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);

__global__ void dynproc_kernel(int* wall, int* src, int* dst, int row, int cols) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    if (x < cols) {
        int best = src[x];
        if (x > 0) { int l = src[x - 1]; if (l < best) { best = l; } }
        if (x < cols - 1) { int r = src[x + 1]; if (r < best) { best = r; } }
        dst[x] = wall[row * cols + x] + best;
    }
}

int main() {
    int cols = 256;
    int rows = 4;
    int* wall;
    int* src;
    int* dst;
    cudaMallocManaged((void**)&wall, rows * cols * 4);
    cudaMallocManaged((void**)&src, cols * 4);
    cudaMallocManaged((void**)&dst, cols * 4);
    for (int i = 0; i < rows * cols; i++) { wall[i] = (i * 7 + 3) % 10; }
    for (int x = 0; x < cols; x++) { src[x] = wall[x]; }
    for (int row = 1; row < rows; row++) {
        dynproc_kernel<<<8, 32>>>(wall, src, dst, row, cols);
        for (int x = 0; x < cols; x++) { src[x] = dst[x]; }
    }
#pragma xpl diagnostic tracePrint(out; wall, src, dst)
    return src[0];
}

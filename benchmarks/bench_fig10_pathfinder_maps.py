"""Bench: regenerate Fig 10 (Pathfinder gpuWall access maps)."""

import pytest

from repro.evalx import fig10


def test_fig10_pathfinder_maps(once):
    result = once(fig10)
    print("\n" + result.text)
    a = next(r for r in result.rows if r["panel"] == "a")
    # 10a: the whole wall is written (initialized + copied in).
    assert a["touched"] == a["words"]
    # 10b-d: each of iterations 1, 2, 5 reads one fifth of the array.
    for panel in ("b", "c", "d"):
        row = next(r for r in result.rows if r["panel"] == panel)
        assert row["pct"] == pytest.approx(20, abs=2)

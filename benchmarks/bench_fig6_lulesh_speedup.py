"""Bench: regenerate Fig 6 (LULESH remedy speedups on three platforms)."""

from repro.evalx import fig6


def test_fig6_lulesh_speedups(once, bench_record):
    # 16 timesteps, the paper's Table III configuration; fewer iterations
    # under-amortize the one-time array migration and depress speedups.
    result = once(fig6, sizes=(8, 16, 32, 48), iterations=16)
    print("\n" + result.text)
    by = {(r["platform"], r["size"]): r for r in result.rows}
    bench_record(
        "fig6_lulesh_speedup",
        pascal_duplicate_48=round(by[("intel-pascal", 48)]["duplicate"], 3),
        volta_duplicate_48=round(by[("intel-volta", 48)]["duplicate"], 3),
        power9_duplicate_48=round(by[("power9-volta", 48)]["duplicate"], 3),
    )

    # Intel nodes: large speedups at size 48 (paper: 2.75x-3.7x band).
    for plat in ("intel-pascal", "intel-volta"):
        big = by[(plat, 48)]
        assert big["read_mostly"] > 2.0
        assert big["duplicate"] > 2.3
        assert big["duplicate"] >= big["read_mostly"] * 0.95
        # All remedies help on PCIe.
        for remedy in ("read_mostly", "preferred_cpu", "accessed_by", "duplicate"):
            assert big[remedy] > 1.0
        # Speedup grows (or holds) with problem size.
        assert big["read_mostly"] > by[(plat, 8)]["read_mostly"]

    # Volta's faster compute gives it the higher ratio, as in the paper
    # (3.7x vs 3.1x for duplication).
    assert by[("intel-volta", 48)]["duplicate"] >= \
        by[("intel-pascal", 48)]["duplicate"] * 0.98

    # Power9/NVLink: duplication is a wash (paper: 1.03x), ReadMostly is a
    # slowdown (paper: 0.8x).
    p9 = by[("power9-volta", 48)]
    assert 0.9 < p9["duplicate"] < 1.15
    assert p9["read_mostly"] < 1.0

"""Bench: regenerate Fig 8 (Smith-Waterman GPU accesses in iteration 8)."""

from repro.evalx import fig8


def test_fig8_sw_iteration8_maps(once):
    result = once(fig8)
    print("\n" + result.text)
    a = next(r for r in result.rows if r["panel"] == "a")
    b = next(r for r in result.rows if r["panel"] == "b")
    # 8a: the GPU wrote exactly the cells of diagonal 8.
    assert a["diagonals"] == [8]
    assert a["touched"] == 7  # interior cells of k=8 on a 20x10 input
    # 8b: the GPU-origin values it read came from diagonals 6 and 7.
    assert set(b["diagonals"]) <= {6, 7}
    assert 7 in b["diagonals"]

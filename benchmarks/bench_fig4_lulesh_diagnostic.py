"""Bench: regenerate Fig 4 (LULESH diagnostic output, second iteration)."""

from repro.evalx import fig4


def test_fig4_lulesh_diagnostic(once):
    result = once(fig4)
    print("\n" + result.text)
    dom = next(r for r in result.rows if r["name"] == "dom")
    # Paper Fig 4: C=27, G=0, density 9%, 18 alternating elements.
    assert dom["C"] == 27
    assert dom["G"] == 0
    assert dom["density_pct"] == 9
    assert dom["alternating"] == 18
    m_p = next(r for r in result.rows if r["name"] == "(dom)->m_p")
    # Paper Fig 4: m_p has G=1024 writes, G>G=1024 reads, 100% density.
    assert m_p["G"] == 1024
    assert m_p["G>G"] == 1024
    assert m_p["density_pct"] == 100

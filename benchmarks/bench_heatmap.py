"""Bench: cost of temporal heat profiling (the ``repro-report`` config).

Heat recording piggybacks on accesses the tracer already intercepts, so
its marginal cost over plain tracing must stay small -- the acceptance
bar is < 2x over the ``traced`` configuration even with source-line
attribution (the expensive part: a Python stack walk per traced access
batch).
"""

from repro.telemetry.overhead import measure_overhead


def test_heat_overhead_under_2x_of_traced(once, bench_record):
    rows = once(measure_overhead, workloads=("sw",), repeats=2)
    for r in rows:
        print(f"\n{r['workload']}: traced {r['traced_x']:.1f}x, "
              f"heat {r['heat_x']:.1f}x "
              f"({r['heat_vs_traced_x']:.2f}x over traced)")
        bench_record(f"heat_overhead_{r['workload']}",
                     traced_x=round(r["traced_x"], 2),
                     heat_x=round(r["heat_x"], 2),
                     heat_vs_traced_x=round(r["heat_vs_traced_x"], 3))
        assert r["heat_vs_traced_x"] < 2.0

"""Bench: cost of access-pattern signatures and live phase tracking.

Phase tracking folds one feature vector per epoch into an online
centroid and the end-of-run signature is a single pass over frozen heat
counts, so the whole ``repro-sig`` layer must stay cheap: the acceptance
bar is < 1.3x over the traced+heat configuration it rides on.

The same bench scores signature-guided adaptive sampling
(``Tracer(sample="auto")``) against a fixed stride that gets an
equal-or-larger recorded-word budget: the adaptive run must reach at
least the fixed run's per-phase shadow fidelity.

Ratios land in ``BENCH_signature.json`` and are guarded by the conftest
perf-regression check (a >25% ratio regression fails the run).
"""

from repro.signature.overhead import (
    measure_adaptive_fidelity,
    measure_signature_overhead,
)


def test_signature_overhead_under_1_3x(once, bench_record):
    rows = once(measure_signature_overhead, workloads=("sw",), repeats=3)
    for r in rows:
        print(f"\n{r['workload']}: signature+phases "
              f"{r['signature_x']:.2f}x over traced")
        bench_record(f"signature_overhead_{r['workload']}", file="signature",
                     signature_x=round(max(r["signature_x"], 1.0), 3))
        assert r["signature_x"] < 1.3


def test_adaptive_fidelity_beats_fixed_at_equal_budget(bench_record):
    fid = measure_adaptive_fidelity()
    print(f"\nadaptive fidelity {fid['auto_fidelity']:.3f} "
          f"({fid['auto_recorded']} words) vs fixed "
          f"{fid['fixed_fidelity']:.3f} ({fid['fixed_recorded']} words)")
    # The fixed-stride contender records at least as many words, yet the
    # adaptive sampler reconstructs each phase's pattern no worse.
    assert fid["auto_recorded"] <= fid["fixed_recorded"]
    assert fid["auto_fidelity"] >= fid["fixed_fidelity"]
    # budget_x: adaptive recorded words per fixed recorded word -- lower
    # is better and guarded against creeping back toward full tracing.
    bench_record("adaptive_sampling", file="signature",
                 budget_x=round(
                     fid["auto_recorded"] / fid["fixed_recorded"], 3),
                 auto_fidelity=round(fid["auto_fidelity"], 4),
                 fixed_fidelity=round(fid["fixed_fidelity"], 4),
                 phase_changes=fid["phase_changes"])

"""Bench: regenerate Fig 5 (access maps of the LULESH domain object)."""

from repro.evalx import fig5


def test_fig5_domain_access_maps(once):
    result = once(fig5)
    print("\n" + result.text)
    rows = {r["panel"]: r for r in result.rows}
    # Init + iteration 1 (5a): the CPU wrote all pointer slots + scalars --
    # far more of the object than any later iteration touches.
    assert rows["a"]["touched"] > 3 * rows["d"]["touched"]
    assert rows["a"]["touched"] >= 100
    # Iteration 2 (5d): only the temporary pointers + scalars are written.
    assert rows["d"]["touched"] < 0.1 * rows["d"]["words"]
    # The steady-state overlap of CPU writes and GPU reads is exactly the
    # paper's 18 alternating words (9 temp pointers x 2 shadow words).
    assert rows["overlap"]["touched"] == 18

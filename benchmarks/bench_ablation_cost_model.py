"""Ablations: which cost-model mechanism produces which paper result.

Each test switches one mechanism off and checks that the corresponding
evaluation shape collapses -- evidence that the reproduced figures emerge
from the modelled mechanism rather than from incidental constants.

* **fault replay storms** drive the LULESH remedy speedups (Fig 6);
* **link coherence** (not bandwidth) drives the Power9 platform flip;
* **oversubscription pressure** drives the Smith-Waterman cliff (Fig 9).
"""

from dataclasses import replace

from repro.memsim import (
    Link,
    Platform,
    UMCostParams,
    intel_pascal,
    nvlink2,
    power9_volta,
)
from repro.workloads.base import make_session
from repro.workloads.lulesh import Lulesh
from repro.workloads.smithwaterman import SmithWaterman


def lulesh_speedup(platform_factory, variant="duplicate", size=32, iters=8):
    times = {}
    for v in ("baseline", variant):
        session = make_session(platform_factory(), trace=False,
                               materialize=False)
        times[v] = Lulesh(session, size, variant=v).run(iters).sim_time
    return times["baseline"] / times[variant]


class TestReplayAblation:
    def test_remedies_collapse_without_fault_replay(self, once):
        def no_replay():
            p = intel_pascal()
            return Platform(
                name="pascal-no-replay", cpu=p.cpu, gpu=p.gpu, link=p.link,
                um_params=replace(p.um_params, replay_per_block=0.0),
            )

        def run():
            return lulesh_speedup(intel_pascal), lulesh_speedup(no_replay)

        with_replay, without_replay = once(run)
        print(f"\nduplicate speedup with replay: {with_replay:.2f}x, "
              f"without: {without_replay:.2f}x")
        assert with_replay > 2.0
        # A large share of the remedy's benefit comes from avoiding the
        # replay storms (the rest is fault service + migration traffic).
        assert without_replay < 0.8 * with_replay


class TestCoherenceAblation:
    def test_platform_flip_comes_from_coherence_not_bandwidth(self, once):
        def incoherent_nvlink():
            p = power9_volta()
            fast_but_dumb = Link(
                name="nvlink-no-ats", bandwidth=p.link.bandwidth,
                latency=p.link.latency, coherent=False,
                remote_byte_time=p.link.remote_byte_time,
                remote_access_overhead=p.link.remote_access_overhead,
            )
            return Platform(
                name="power9-incoherent", cpu=p.cpu, gpu=p.gpu,
                link=fast_but_dumb, um_params=p.um_params,
                stream_op_overhead=p.stream_op_overhead,
            )

        def run():
            return (lulesh_speedup(power9_volta),
                    lulesh_speedup(incoherent_nvlink))

        coherent, incoherent = once(run)
        print(f"\nduplicate speedup on coherent NVLink: {coherent:.2f}x, "
              f"with coherence disabled: {incoherent:.2f}x")
        # With coherence, duplication is a wash (the paper's 1.03x)...
        assert coherent < 1.2
        # ...without it, the remedy matters again despite identical
        # bandwidth: the flip is a coherence effect.
        assert incoherent > 1.5 * coherent


class TestPressureAblation:
    def test_sw_cliff_comes_from_oversubscription_pressure(self, once):
        n = 2300  # the paper's 46000 scaled by 1/20
        gpu_mem = int(16.6e9 / 400)

        def baseline_time(pressure_factor):
            platform = intel_pascal(gpu_memory_bytes=gpu_mem)
            object.__setattr__(
                platform.um, "params",
                replace(platform.um.params, pressure_factor=pressure_factor))
            session = make_session(platform, trace=False, materialize=False)
            return SmithWaterman(session, n).run().sim_time

        def run():
            return baseline_time(8.0), baseline_time(1.0)

        pressured, unpressured = once(run)
        print(f"\noversubscribed baseline with pressure: "
              f"{pressured * 1e3:.0f} ms, without: {unpressured * 1e3:.0f} ms")
        # Disabling the pressured fault path removes most of the cliff.
        assert pressured > 3 * unpressured

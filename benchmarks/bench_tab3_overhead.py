"""Bench: regenerate Table III (runtime overhead of instrumentation).

The paper reports 5x-20x (average ~15x) for compiled instrumented
binaries.  Here the measured quantity is the wall-clock cost of the
tracer + shadow-memory layer over the identical simulated runs -- the
same kind of overhead on the same code paths.  The assertion is on the
*direction and rough order* (tracing costs real time, within the same
order of magnitude band the paper reports), not the absolute ratio.

The ``fastpath_*`` tests additionally guard the PR-5 optimisation layers
(UM-driver resident fast path, trace batching, interpreter dispatch):
each records ratios into ``BENCH_fastpath.json``, where the committed
values act as perf-regression baselines under the usual 25% guard.
Ratios are fast-configuration over slow-configuration time, measured
back-to-back in the same process, so they are machine-independent:
a value drifting toward 1.0 means the optimisation stopped working.
"""

import time

from repro.evalx import tab3
from repro.interp import run_program
from repro.memsim import AddressSpace, MemoryKind, Processor, intel_pascal
from repro.runtime import Tracer


def test_tab3_instrumentation_overhead(once, bench_record):
    result = once(tab3, quick=True, repeats=2)
    print("\n" + result.text)
    ratios = [r["overhead_x"] for r in result.rows]
    bench_record("tab3_overhead",
                 mean_overhead_x=round(sum(ratios) / len(ratios), 2),
                 max_overhead_x=round(max(ratios), 2))
    # Tracing must cost extra time on average; per-benchmark ratios get a
    # noise allowance since the PR-5 fast paths brought tracing close to
    # free on the quick configurations used here...
    assert sum(ratios) / len(ratios) > 1.0
    assert all(x > 0.8 for x in ratios)
    # ...and stay within a sane band (paper: 5x-20x for compiled code).
    assert all(x < 100 for x in ratios)


def _um_hit_loop(fast: bool, rounds: int = 4000) -> float:
    """Steady-state resident accesses: the UM driver's hottest case."""
    plat = intel_pascal()
    plat.um.fast_path = fast
    alloc = plat.address_space.allocate(1 << 22, MemoryKind.MANAGED,
                                        materialize=False)
    um = plat.um
    um.register(alloc)
    um.access(alloc, 0, alloc.num_pages, Processor.GPU, is_write=True)
    t0 = time.perf_counter()
    for _ in range(rounds):
        um.access(alloc, 0, alloc.num_pages, Processor.GPU, is_write=False)
    return time.perf_counter() - t0


def test_fastpath_um_driver(once, bench_record):
    def measure():
        slow = min(_um_hit_loop(False), _um_hit_loop(False))
        fast = min(_um_hit_loop(True), _um_hit_loop(True))
        return slow, fast

    slow, fast = once(measure)
    ratio = fast / slow
    bench_record("fastpath_um_driver", file="fastpath",
                 fast_vs_slow_x=round(ratio, 3),
                 fast_s=round(fast, 4), slow_s=round(slow, 4))
    # The resident fast path must stay several times cheaper than the
    # full state machine on steady-state hits.
    assert ratio < 0.5


_STORM = """
__global__ void storm(int *a, int *b, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        for (int k = 0; k < 20; k++) {
            b[i] = a[i] + b[i] * 2 + k;
        }
    }
}
int main() {
    int n = 512;
    int *a; int *b;
    cudaMallocManaged((void**)&a, n * sizeof(int));
    cudaMallocManaged((void**)&b, n * sizeof(int));
    for (int i = 0; i < n; i++) { a[i] = i; b[i] = 0; }
    storm<<<4, 128>>>(a, b, n);
    cudaDeviceSynchronize();
    cudaFree(a); cudaFree(b);
    return 0;
}
"""


def _trace_seq_loop(batch: bool, words: int = 8192, rounds: int = 6) -> float:
    """Sequential word-at-a-time accesses: the pattern batching coalesces.

    Measured directly at the tracer API so the win is not diluted by
    interpreter time -- with batching on, adjacent calls merge into one
    span and the shadow memory sees one vectorized update per run;
    with it off every call pays a numpy slice RMW.
    """
    space = AddressSpace()
    alloc = space.allocate(words * 4, MemoryKind.MANAGED, label="seq")
    tracer = Tracer(batch=batch)
    tracer.trc_register(alloc)
    on_access = tracer.on_access
    t0 = time.perf_counter()
    for r in range(rounds):
        is_write = bool(r & 1)
        for w in range(words):
            on_access(Processor.CPU, alloc, w * 4, 4, 1,
                      is_write=is_write, indices=None, is_rmw=False)
        tracer.flush_trace()
    return time.perf_counter() - t0


def test_fastpath_trace_batching(once, bench_record):
    def measure():
        unbatched = min(_trace_seq_loop(False), _trace_seq_loop(False))
        batched = min(_trace_seq_loop(True), _trace_seq_loop(True))
        return unbatched, batched

    unbatched, batched = once(measure)
    ratio = batched / unbatched
    bench_record("fastpath_trace_batching", file="fastpath",
                 batched_vs_unbatched_x=round(ratio, 3),
                 batched_s=round(batched, 4), unbatched_s=round(unbatched, 4))
    # Coalescing must stay several times cheaper than per-call shadow
    # updates on its target pattern.
    assert ratio < 0.6


def test_fastpath_instrumented_source(once, bench_record):
    def measure():
        plain = min(time_plain() for _ in range(2))
        instr = min(time_instr() for _ in range(2))
        return plain, instr

    def time_plain():
        t0 = time.perf_counter()
        run_program(_STORM, instrumented=False)
        return time.perf_counter() - t0

    def time_instr():
        t0 = time.perf_counter()
        run_program(_STORM, tracer=Tracer())
        return time.perf_counter() - t0

    plain, instr = once(measure)
    bench_record("fastpath_instr_source", file="fastpath",
                 instr_vs_plain_x=round(instr / plain, 2),
                 instr_s=round(instr, 3))
    # Instrumentation overhead on interpreted source must stay small
    # (pre-PR-5 this ratio was bounded by the interpreter itself; the
    # dispatch + batching work keeps tracing within 2x of plain runs).
    assert instr / plain < 2.0

"""Bench: regenerate Table III (runtime overhead of instrumentation).

The paper reports 5x-20x (average ~15x) for compiled instrumented
binaries.  Here the measured quantity is the wall-clock cost of the
tracer + shadow-memory layer over the identical simulated runs -- the
same kind of overhead on the same code paths.  The assertion is on the
*direction and rough order* (tracing costs real time, within the same
order of magnitude band the paper reports), not the absolute ratio.
"""

from repro.evalx import tab3


def test_tab3_instrumentation_overhead(once, bench_record):
    result = once(tab3, quick=True, repeats=2)
    print("\n" + result.text)
    ratios = [r["overhead_x"] for r in result.rows]
    bench_record("tab3_overhead",
                 mean_overhead_x=round(sum(ratios) / len(ratios), 2),
                 max_overhead_x=round(max(ratios), 2))
    # Tracing must cost measurable extra time on every benchmark...
    assert all(x > 1.0 for x in ratios)
    # ...and stay within a sane band (paper: 5x-20x for compiled code).
    assert all(x < 100 for x in ratios)

"""Bench: regenerate Table II (findings in the Rodinia benchmarks)."""

from repro.evalx import tab2


def test_tab2_rodinia_findings(once):
    result = once(tab2)
    print("\n" + result.text)
    by = {r["benchmark"]: r for r in result.rows}

    # Every benchmark's findings match the paper's table.
    for bench in ("backprop", "cfd", "gaussian", "lud", "nn", "pathfinder"):
        assert by[bench]["matches_paper"], bench

    # And the clean benchmarks are actually clean.
    assert by["cfd"]["findings"] == []
    assert by["nn"]["findings"] == []

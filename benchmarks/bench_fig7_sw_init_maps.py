"""Bench: regenerate Fig 7 (Smith-Waterman H initialization vs usage)."""

from repro.evalx import fig7


def test_fig7_sw_initialization_maps(once):
    result = once(fig7)
    print("\n" + result.text)
    a = next(r for r in result.rows if r["panel"] == "a")
    b = next(r for r in result.rows if r["panel"] == "b")
    # 7a: the CPU initialized the entire matrix.
    assert a["touched"] == a["words"]
    # 7b: only the boundary (first row + first column) was ever read:
    # (n+1) + (m+1) - 1 = 21 + 11 - 1 = 31 of 231 words.
    assert b["touched"] == 31
    assert b["words"] == 231

"""Bench: regenerate Fig 11 (Pathfinder overlapped-transfer speedups)."""

from repro.evalx import fig11


def test_fig11_pathfinder_speedups(once, bench_record):
    result = once(fig11, cols=500_000, rows=(200, 600, 1000))
    print("\n" + result.text)
    pascal = [r for r in result.rows if r["platform"] == "intel-pascal"]
    power9 = [r for r in result.rows if r["platform"] == "power9-volta"]
    bench_record(
        "fig11_pathfinder_speedup",
        pascal_max=round(max(r["speedup"] for r in pascal), 3),
        power9_max=round(max(r["speedup"] for r in power9), 3),
    )
    # Paper: up to 1.13x faster on Intel+Pascal ...
    assert all(1.0 < r["speedup"] < 1.25 for r in pascal)
    assert max(r["speedup"] for r in pascal) > 1.08
    # ... and the revised version remains slower on IBM+Volta.
    assert all(r["speedup"] < 1.0 for r in power9)

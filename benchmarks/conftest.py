"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (figure or table) through
the evaluation harness and asserts the *shape* invariants the paper
reports -- who wins, by roughly what factor, where crossovers fall.
Simulated experiments are deterministic, so a single round suffices.

Benchmarks can additionally publish headline numbers through the
``bench_record`` fixture; everything recorded during a session is merged
into ``benchmarks/BENCH_heatmap.json`` (machine-readable, keyed by record
name) so dashboards and CI diffs can track them without parsing pytest
output.
"""

import json
from pathlib import Path

import pytest

_RECORDS: list[dict] = []
_BENCH_JSON = Path(__file__).parent / "BENCH_heatmap.json"


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, **kwargs):
        return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)

    return run


@pytest.fixture
def bench_record():
    """Publish named headline numbers into ``BENCH_heatmap.json``."""

    def record(name: str, **numbers) -> None:
        _RECORDS.append({"name": name, **numbers})

    return record


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's records into the benchmark JSON (by name)."""
    if not _RECORDS:
        return
    merged: dict[str, dict] = {}
    if _BENCH_JSON.exists():
        try:
            merged = {r["name"]: r for r in json.loads(_BENCH_JSON.read_text())}
        except (ValueError, KeyError, TypeError):
            merged = {}
    for r in _RECORDS:
        merged[r["name"]] = r
    rows = sorted(merged.values(), key=lambda r: r["name"])
    _BENCH_JSON.write_text(json.dumps(rows, indent=2) + "\n")

"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (figure or table) through
the evaluation harness and asserts the *shape* invariants the paper
reports -- who wins, by roughly what factor, where crossovers fall.
Simulated experiments are deterministic, so a single round suffices.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, **kwargs):
        return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)

    return run

"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (figure or table) through
the evaluation harness and asserts the *shape* invariants the paper
reports -- who wins, by roughly what factor, where crossovers fall.
Simulated experiments are deterministic, so a single round suffices.

Benchmarks can additionally publish headline numbers through the
``bench_record`` fixture.  Records are grouped per baseline *file*
(``bench_record(name, file="causes", ...)`` lands in
``benchmarks/BENCH_causes.json``; the default file is ``heatmap``) so
dashboards and CI diffs can track them without parsing pytest output.

The committed ``BENCH_*.json`` files double as perf-regression
baselines: every recorded field ending in ``_x`` (an overhead ratio,
machine-independent by construction) is compared against the committed
value and the recording test fails when it regresses by more than
:data:`REGRESSION_TOLERANCE`.  Baselines are only rewritten when the
whole session passes, so a regressing run cannot silently ratchet its
own baseline.  Set ``REPRO_BENCH_NO_GUARD=1`` to record without
guarding (e.g. when intentionally re-baselining).
"""

import json
import os
from pathlib import Path

import pytest

_RECORDS: list[dict] = []
_BENCH_DIR = Path(__file__).parent

#: Relative increase of a committed ``_x`` ratio that fails the guard.
REGRESSION_TOLERANCE = 0.25


def _baseline(file: str) -> dict[str, dict]:
    path = _BENCH_DIR / f"BENCH_{file}.json"
    if not path.exists():
        return {}
    try:
        return {r["name"]: r for r in json.loads(path.read_text())}
    except (ValueError, KeyError, TypeError):
        return {}


def _guard(name: str, file: str, numbers: dict) -> None:
    if os.environ.get("REPRO_BENCH_NO_GUARD"):
        return
    base = _baseline(file).get(name)
    if not base:
        return
    for key, value in numbers.items():
        if not key.endswith("_x"):
            continue
        old = base.get(key)
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        if value > old * (1.0 + REGRESSION_TOLERANCE):
            pytest.fail(
                f"perf regression: {name}.{key} = {value} vs committed "
                f"baseline {old} (+{100 * (value / old - 1):.0f}% > "
                f"{100 * REGRESSION_TOLERANCE:.0f}%); re-baseline with "
                f"REPRO_BENCH_NO_GUARD=1 if intentional")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, **kwargs):
        return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)

    return run


@pytest.fixture
def bench_record():
    """Publish named headline numbers into ``BENCH_<file>.json``."""

    def record(name: str, file: str = "heatmap", **numbers) -> None:
        _RECORDS.append({"file": file, "name": name, **numbers})
        _guard(name, file, numbers)

    return record


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's records into the benchmark JSON (by name).

    Skipped on failing sessions so a regression never overwrites the
    baseline it was caught against.
    """
    if not _RECORDS or exitstatus != 0:
        return
    by_file: dict[str, list[dict]] = {}
    for r in _RECORDS:
        r = dict(r)
        by_file.setdefault(r.pop("file"), []).append(r)
    for file, records in by_file.items():
        merged = _baseline(file)
        for r in records:
            merged[r["name"]] = r
        rows = sorted(merged.values(), key=lambda r: r["name"])
        (_BENCH_DIR / f"BENCH_{file}.json").write_text(
            json.dumps(rows, indent=2) + "\n")

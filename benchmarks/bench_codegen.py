"""Bench: compiled backends vs. the tree-walking interpreter.

Three kernel-loop-dominated mini-CUDA programs -- the Pathfinder
wavefront, the LULESH leapfrog, and a Spatter-style LCG-indirection
gather (the index stream computed on device, as in Spatter's CUDA
backend) -- run under all three backends.  The acceptance bars come
from the codegen issue: the vectorized grid executor must clear >=10x
over the interpreter on the Pathfinder and LULESH kernel loops and
>=3x on the LCG gather, whose scattered addressing exercises the
gather/take path rather than dense slices.

stdout (including the diagnosis tables) must byte-match across
backends and the vectorizer must run fallback-free: a silent demotion
to the scalar tier would otherwise still pass the 3x bar.

Ratios land in ``BENCH_codegen.json`` as ``*_vs_interp_x`` overhead
fractions (compiled time / interpreter time, smaller is better) so the
conftest guard fails the run if a committed ratio regresses >25%.
"""

import time

from repro.interp import run_program
from repro.runtime import Tracer
from repro.workloads.minicuda import lulesh_source

_HEADER = """\
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);
"""


def pathfinder_loop_source(cols: int = 2048, rows: int = 8,
                           iters: int = 48) -> str:
    """Pathfinder's relax kernel iterated over a fixed wall.

    Unlike the catalogue builder (one kernel row per wall row), the
    wavefront loop cycles a small wall so the kernel-launch count grows
    independently of the host-side init -- the measured region is the
    kernel loop, not the interpreted setup.
    """
    grid = max(1, -(-cols // 64))
    return _HEADER + f"""
__global__ void relax(int* dst, int* src, int* wall, int row, int cols) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < cols) {{
        int best = src[i];
        if (i > 0) {{
            int left = src[i - 1];
            best = left < best ? left : best;
        }}
        if (i < cols - 1) {{
            int right = src[i + 1];
            best = right < best ? right : best;
        }}
        dst[i] = wall[row * cols + i] + best;
    }}
}}
int main() {{
    int cols = {cols};
    int* wall;
    int* a;
    int* b;
    cudaMallocManaged((void**)&wall, {rows} * cols * sizeof(int));
    cudaMallocManaged((void**)&a, cols * sizeof(int));
    cudaMallocManaged((void**)&b, cols * sizeof(int));
    for (int i = 0; i < {rows} * cols; i++) {{
        wall[i] = (i * 7919 + 13) % 97;
    }}
    for (int i = 0; i < cols; i++) {{ a[i] = wall[i]; b[i] = 0; }}
    for (int t = 1; t < {iters}; t++) {{
        if (t % 2 == 1) {{
            relax<<<{grid}, 64>>>(b, a, wall, t % {rows}, cols);
        }} else {{
            relax<<<{grid}, 64>>>(a, b, wall, t % {rows}, cols);
        }}
    }}
    cudaDeviceSynchronize();
    int* last = {iters} % 2 == 0 ? b : a;
    int best = last[0];
    for (int i = 1; i < cols; i++) {{
        if (last[i] < best) {{ best = last[i]; }}
    }}
    printf("best=%d\\n", best);
    tracePrint(XplAllocData(wall, "wall", {rows} * cols * 4),
               XplAllocData(a, "a", cols * 4),
               XplAllocData(b, "b", cols * 4));
    return 0;
}}
"""


def spatter_lcg_loop_source(n: int = 4096, spread: int = 8192,
                            iters: int = 12) -> str:
    """Spatter LCG indirection with the index computed on device.

    The catalogue's ``mc-spatter-lcg`` embeds its index stream as host
    statements (capped at 512), so at benchmark scale the gather is
    generated in-kernel: every lane reads ``data`` through an LCG-
    scrambled index, the access pattern the vectorizer must lower to a
    numpy ``take`` rather than a dense slice.
    """
    grid = max(1, -(-n // 256))
    return _HEADER + f"""
__global__ void lcg_gather(int* res, int* data, int n, int spread) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{
        int x = (i * 12345 + 6789) % spread;
        res[i] = res[i] + data[x];
    }}
}}
int main() {{
    int n = {n};
    int* data;
    int* res;
    cudaMallocManaged((void**)&data, {spread} * sizeof(int));
    cudaMallocManaged((void**)&res, n * sizeof(int));
    for (int i = 0; i < {spread}; i++) {{ data[i] = i % 911; }}
    for (int i = 0; i < n; i++) {{ res[i] = 0; }}
    for (int t = 0; t < {iters}; t++) {{
        lcg_gather<<<{grid}, 256>>>(res, data, n, {spread});
    }}
    cudaDeviceSynchronize();
    int s = 0;
    for (int i = 0; i < n; i++) {{ s += res[i]; }}
    printf("s=%d\\n", s);
    tracePrint(XplAllocData(data, "data", {spread} * 4),
               XplAllocData(res, "res", n * 4));
    return 0;
}}
"""


def _run(source: str, backend: str, name: str):
    tracer = Tracer()
    t0 = time.perf_counter()
    it = run_program(source, tracer=tracer, backend=backend,
                     source_name=f"{name}.cu")
    return time.perf_counter() - t0, it


def _measure(source: str, name: str) -> dict:
    times, stdout = {}, {}
    for backend in ("interp", "codegen", "codegen-vec"):
        dt, it = _run(source, backend, name)
        times[backend] = dt
        stdout[backend] = it.stdout
        if backend == "codegen-vec":
            info = it.tracer.backend_info()
            assert info["fallbacks"] == 0, (
                f"{name}: vectorizer fell back: {info}")
    assert stdout["codegen"] == stdout["interp"], f"{name}: scalar drift"
    assert stdout["codegen-vec"] == stdout["interp"], f"{name}: vec drift"
    return times


def _report(name, times, once, bench_record, vec_bar):
    vec_x = times["interp"] / times["codegen-vec"]
    scalar_x = times["interp"] / times["codegen"]
    print(f"\n{name}: interp {times['interp']:.2f}s, "
          f"scalar {times['codegen']:.2f}s ({scalar_x:.1f}x), "
          f"vec {times['codegen-vec']:.3f}s ({vec_x:.1f}x)")
    bench_record(
        f"codegen_{name}", file="codegen",
        vec_vs_interp_x=round(times["codegen-vec"] / times["interp"], 4),
        scalar_vs_interp_x=round(times["codegen"] / times["interp"], 4),
        vec_speedup=round(vec_x, 1),
        scalar_speedup=round(scalar_x, 1),
        interp_s=round(times["interp"], 3))
    assert vec_x >= vec_bar, (
        f"{name}: vectorized speedup {vec_x:.1f}x below the "
        f"{vec_bar:.0f}x bar")


def test_pathfinder_kernel_loop_10x(once, bench_record):
    source = pathfinder_loop_source()
    times = once(lambda: _measure(source, "pathfinder"))
    _report("pathfinder", times, once, bench_record, vec_bar=10.0)


def test_lulesh_kernel_loop_10x(once, bench_record):
    source = lulesh_source(nelem=2048, steps=16)
    times = once(lambda: _measure(source, "lulesh"))
    _report("lulesh", times, once, bench_record, vec_bar=10.0)


def test_spatter_lcg_indirection_3x(once, bench_record):
    source = spatter_lcg_loop_source()
    times = once(lambda: _measure(source, "spatter_lcg"))
    _report("spatter_lcg", times, once, bench_record, vec_bar=3.0)

"""Ablation: the shadow memory table's search-strategy crossover (§IV-D).

The paper: "Lookup of an entry uses linear search when the number of
allocations is less than 64, and binary search otherwise."  This bench
measures real wall-clock lookup throughput in both regimes and checks the
design holds up: binary search keeps per-lookup cost roughly flat as the
table grows, where forced-linear cost scales with the entry count.
"""

import time

from repro.memsim import AddressSpace, MemoryKind
from repro.runtime import ShadowMemoryTable
from repro.runtime import smt as smt_module

LOOKUPS = 20_000


def build_table(entries: int):
    table = ShadowMemoryTable()
    space = AddressSpace()
    allocs = [space.allocate(256, MemoryKind.MANAGED, materialize=False)
              for _ in range(entries)]
    for a in allocs:
        table.insert(a)
    probes = [allocs[(i * 7919) % entries].base + 13 for i in range(LOOKUPS)]
    return table, probes


def time_lookups(table, probes) -> float:
    t0 = time.perf_counter()
    for addr in probes:
        table.lookup(addr)
    return time.perf_counter() - t0


def test_smt_search_crossover(benchmark):
    def run():
        small_table, small_probes = build_table(32)      # linear regime
        big_table, big_probes = build_table(1024)        # binary regime
        t_small = time_lookups(small_table, small_probes)
        t_big = time_lookups(big_table, big_probes)

        # Force the 1024-entry table through linear search to expose what
        # the paper's crossover avoids.
        original = smt_module.LINEAR_SEARCH_LIMIT
        smt_module.LINEAR_SEARCH_LIMIT = 10 ** 9
        try:
            t_big_linear = time_lookups(big_table, big_probes)
        finally:
            smt_module.LINEAR_SEARCH_LIMIT = original
        return t_small, t_big, t_big_linear

    t_small, t_big, t_big_linear = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    per = 1e9 / LOOKUPS
    print(f"\nper-lookup: linear@32 {t_small * per:.0f} ns, "
          f"binary@1024 {t_big * per:.0f} ns, "
          f"forced-linear@1024 {t_big_linear * per:.0f} ns")
    # Binary search at 1024 entries must beat linear at 1024 by a wide
    # margin -- the design choice §IV-D describes pays off...
    assert t_big_linear > 3 * t_big
    # ...while staying within a small factor of the tiny-table case.
    assert t_big < 10 * t_small

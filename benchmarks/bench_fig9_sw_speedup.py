"""Bench: regenerate Fig 9 (Smith-Waterman rotated-version speedups)."""

from repro.evalx import fig9


def test_fig9_sw_speedups(once, bench_record):
    # Paper sizes / 20 with GPU memory / 400 keeps the bench quick while
    # preserving the 45000 -> 46000 oversubscription crossover.
    result = once(fig9, scale=20)
    print("\n" + result.text)
    bench_record(
        "fig9_sw_speedup",
        **{f"{r['platform']}_max": round(r["speedup"], 3)
           for plat in ("intel-pascal", "power9-volta")
           for r in [max((x for x in result.rows if x["platform"] == plat),
                         key=lambda x: x["speedup"])]})
    for plat in ("intel-pascal", "power9-volta"):
        rows = [r for r in result.rows if r["platform"] == plat]
        fits = [r for r in rows if not r["oversubscribed"]]
        over = [r for r in rows if r["oversubscribed"]][0]
        # The rotated version wins clearly at the larger in-memory sizes...
        assert fits[-1]["speedup"] > 1.5
        # ...and the win explodes when the baseline's data set exceeds GPU
        # memory (the paper's 24.9 s cliff).
        assert over["speedup"] > 2 * fits[-1]["speedup"]
        assert over["baseline_ms"] > 3 * fits[-1]["baseline_ms"]
        # Speedup grows with input size.
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)

"""Bench: cost of causal provenance (the ``repro-why run`` config).

Cause links piggyback on events the driver already records, so their
marginal cost over plain tracing must stay small -- the acceptance bar
is < 2.5x over the ``traced`` configuration even with per-API source-
site stack walks (the expensive half; ``--no-sites`` captures skip it).
The bar was 2x before the PR-5 fast paths; those sped up the *traced*
denominator while the stack walks' absolute cost is unchanged, so the
same provenance work now reads as a larger relative ratio.

Recorded ratios are floored at 1.0 before entering the baseline: a
measured ratio below 1.0 means "within noise of free", and committing a
lucky sub-1.0 sample would set an unmeetable bar for the +25% guard.
"""

from repro.causes.overhead import measure_causes_overhead


def test_causal_recording_under_2x_of_traced(once, bench_record):
    rows = once(measure_causes_overhead, workloads=("sw",), repeats=3)
    for r in rows:
        print(f"\n{r['workload']}: causes {r['causes_x']:.2f}x over traced "
              f"({r['causes_no_sites_x']:.2f}x without site walks)")
        bench_record(f"causes_overhead_{r['workload']}", file="causes",
                     causes_x=round(max(r["causes_x"], 1.0), 3),
                     causes_no_sites_x=round(
                         max(r["causes_no_sites_x"], 1.0), 3))
        assert r["causes_x"] < 2.5
        # Skipping the stack walk must never cost materially more than
        # doing it (generous margin: both ratios sit near 1x and jitter).
        assert r["causes_no_sites_x"] <= r["causes_x"] * 1.25

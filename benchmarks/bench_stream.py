"""Bench: spill-to-disk streaming overhead over plain in-memory capture.

The streaming path (SpillingHeatStore + ring event log + segment writer)
replaces unbounded in-memory retention with bounded memory and on-disk
segments.  Its acceptance bar is <= 1.5x the in-memory run: the spill
work is JSON encoding plus one framed write per epoch, amortised across
a workload that is itself dominated by interpreter-level simulation.

The ratio lands in ``BENCH_stream.json`` and is guarded by the conftest
perf-regression check (a >25% ratio regression fails the run).
"""

import time

from repro.heatmap.cli import REPORT_RUNNERS
from repro.heatmap.store import HeatStore
from repro.stream.merge import merge_shards
from repro.stream.shard import run_streaming, split_stream
from repro.workloads.base import make_session

WORKLOAD = "lulesh"
REPEATS = 2


def _in_memory() -> None:
    session = make_session("intel-pascal", trace=True)
    session.platform.um.track_causes = True
    heat = HeatStore(nbuckets=64, attribute=True)
    session.tracer.heat = heat
    REPORT_RUNNERS[WORKLOAD](session)


def _best(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_spill_overhead_under_1_5x(tmp_path, once, bench_record):
    memory_s = _best(_in_memory)

    runs = iter(range(REPEATS + 1))

    def streaming():
        run_streaming(WORKLOAD, "pcie", tmp_path / f"s{next(runs)}",
                      log_capacity=32)

    spill_s = once(lambda: _best(streaming))
    ratio = spill_s / memory_s

    # Merge throughput rides along as an informational number.
    shards = split_stream(tmp_path / "s0", tmp_path / "shards", 4)
    t0 = time.perf_counter()
    merged = merge_shards(shards)
    merge_s = time.perf_counter() - t0

    print(f"\n{WORKLOAD}: in-memory {memory_s * 1e3:.0f}ms, "
          f"streaming {spill_s * 1e3:.0f}ms ({ratio:.2f}x), "
          f"4-shard merge {merge_s * 1e3:.0f}ms "
          f"({len(merged.events)} events)")
    bench_record("stream_spill_lulesh", file="stream",
                 spill_vs_memory_x=round(ratio, 3),
                 in_memory_s=round(memory_s, 4),
                 streaming_s=round(spill_s, 4),
                 merge_4shard_s=round(merge_s, 4),
                 merged_events=len(merged.events))
    assert ratio <= 1.5, f"spill overhead {ratio:.2f}x exceeds 1.5x bar"
